"""Persistent shared-memory worker pool for sweep execution.

The per-group fork pool this replaces re-paid process startup and
dataset preparation for every (preset, degree, seed) group, which made
``--jobs 4`` *slower* than serial on small cells. This subsystem keeps
two mechanisms separate and composable:

* :class:`SharedDatasetCache` — the parent process synthesizes each
  distinct dataset (one per (preset, seed, partition-override, α) key)
  exactly once via :func:`~repro.experiments.runner.prepare_data` and
  publishes its arrays into one
  :class:`multiprocessing.shared_memory.SharedMemory` segment. Workers
  rebind the arrays zero-copy (``np.ndarray`` views over the mapped
  buffer, marked read-only) from the picklable :class:`SharedDataset`
  descriptor that travels with each task.
* :class:`PersistentPool` — long-lived fork workers pulling individual
  cells off one work queue until a sentinel arrives. Workers are forked
  once per sweep, so presets, model factories, lookup closures and
  round hooks never need to be picklable (the ``run_one`` closure is
  inherited through the fork, exactly like the old module-global
  context). A worker that raises ships the formatted traceback back to
  the parent and stops; the parent then terminates the remaining
  workers (poisoning the queue) and raises :class:`PoolWorkerError`
  carrying the original traceback. A worker that dies without
  reporting (hard crash) is detected by liveness polling.

Lifecycle contract: every published segment is unlinked exactly once —
on :meth:`SharedDatasetCache.close` (invoked by the sweep's ``finally``
whether the sweep succeeded, failed, or was interrupted) with an
``atexit`` hook as the last-resort backstop. The ``shm-unlink`` rule of
``repro check`` enforces the same contract statically on any future
``SharedMemory(create=True)`` call site.

Platform constraint: the pool requires the ``fork`` start method
(Linux). ``multiprocessing.shared_memory`` itself is portable, but the
no-pickling property of the worker context is not — on other platforms
run ``jobs=1`` per shard and split work with ``--shard`` instead.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import queue as queue_module
import traceback
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Hashable, Iterator

import numpy as np

from ..data.dataset import ArrayDataset
from .artifacts import PlanCell
from .presets import ExperimentPreset
from .runner import PreparedData

__all__ = [
    "PoolWorkerError",
    "SharedDataset",
    "SharedDatasetCache",
    "PersistentPool",
    "bind_data",
]


class PoolWorkerError(RuntimeError):
    """A pool worker failed while executing a cell.

    ``cell_id`` names the cell that raised (empty when the worker died
    without reporting); ``worker_traceback`` is the worker-side
    formatted traceback, embedded in the message so the original
    failure is visible at the call site that observed it.
    """

    def __init__(self, cell_id: str, worker_traceback: str) -> None:
        self.cell_id = cell_id
        self.worker_traceback = worker_traceback
        where = f"cell {cell_id}" if cell_id else "a worker"
        super().__init__(
            f"sweep pool worker failed while running {where}\n"
            f"--- worker traceback ---\n{worker_traceback}"
        )


@dataclass(frozen=True)
class SharedDataset:
    """Picklable descriptor of one published dataset segment.

    ``arrays`` maps each logical array (``"train.x"``, ``"train.y"``,
    …, ``"partition.<i>"``) to its (shape, dtype, byte offset) within
    the segment; ``num_classes`` carries the (train, test, validation)
    class counts the :class:`~repro.data.dataset.ArrayDataset`
    constructors need. Everything else about a cell (preset object,
    degree, topology) is resolved worker-side, so this descriptor stays
    small and queue-friendly.
    """

    segment: str
    seed: int
    num_classes: tuple[int, int, int]
    arrays: tuple[tuple[str, tuple[int, ...], str, int], ...]


def _data_arrays(data: PreparedData) -> list[tuple[str, np.ndarray]]:
    """The flat, ordered array inventory of one :class:`PreparedData`."""
    items = [
        ("train.x", data.train.x),
        ("train.y", data.train.y),
        ("test.x", data.test.x),
        ("test.y", data.test.y),
        ("validation.x", data.validation.x),
        ("validation.y", data.validation.y),
    ]
    items.extend(
        (f"partition.{i}", part) for i, part in enumerate(data.partition)
    )
    return [(name, np.ascontiguousarray(arr)) for name, arr in items]


class SharedDatasetCache:
    """Parent-side registry of published dataset segments, keyed by the
    sweep's data key. Owns every segment it creates and unlinks all of
    them on :meth:`close` (idempotent; also registered with ``atexit``
    as a backstop, and guarded by pid so a forked child inheriting the
    object can never unlink segments from under its siblings)."""

    def __init__(self) -> None:
        self._owner_pid = os.getpid()
        self._segments: dict[Hashable, shared_memory.SharedMemory] = {}
        self._published: dict[Hashable, SharedDataset] = {}
        atexit.register(self.close)

    def get(self, key: Hashable) -> SharedDataset | None:
        return self._published.get(key)

    @property
    def keys(self) -> tuple[Hashable, ...]:
        """Keys published so far, in publication order."""
        return tuple(self._published)

    def publish(self, key: Hashable, data: PreparedData) -> SharedDataset:
        """Copy ``data``'s arrays into a fresh shared-memory segment and
        return the descriptor workers bind from."""
        if key in self._published:
            raise ValueError(f"data key {key!r} already published")
        arrays = _data_arrays(data)
        offsets, size = [], 0
        for _, arr in arrays:
            offsets.append(size)
            size += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(size, 1))
        try:
            table = []
            for (name, arr), offset in zip(arrays, offsets):
                dst = np.ndarray(
                    arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset
                )
                dst[...] = arr
                del dst  # release the buffer view so close() can unmap
                table.append((name, arr.shape, arr.dtype.str, offset))
            meta = SharedDataset(
                segment=shm.name,
                seed=data.seed,
                num_classes=(
                    data.train.num_classes,
                    data.test.num_classes,
                    data.validation.num_classes,
                ),
                arrays=tuple(table),
            )
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        self._segments[key] = shm
        self._published[key] = meta
        return meta

    def close(self) -> None:
        """Unlink every published segment (idempotent, fork-safe)."""
        if os.getpid() != self._owner_pid:
            return  # a forked child inherited this object; not ours
        while self._segments:
            _, shm = self._segments.popitem()
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._published.clear()
        atexit.unregister(self.close)

    def __enter__(self) -> "SharedDatasetCache":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


#: Worker-side segment attachments, keyed by segment name. Bounded by
#: the number of distinct datasets a single sweep publishes; attachments
#: are released wholesale when the worker process exits.
_BINDINGS: dict[str, shared_memory.SharedMemory] = {}


def bind_data(meta: SharedDataset, preset: ExperimentPreset) -> PreparedData:
    """Rebind one published dataset inside a worker, zero-copy.

    Attaches to the segment on first use (per process) and builds
    read-only ``np.ndarray`` views over the mapped buffer — no pixel is
    copied on the feature arrays, which is what makes a cell's marginal
    cost independent of dataset size. ``preset`` is the worker-resolved
    preset the rebound :class:`PreparedData` should carry (for scenario
    cells it is the battery-adjusted base, which never affects the
    array bytes).
    """
    shm = _BINDINGS.get(meta.segment)
    if shm is None:
        shm = shared_memory.SharedMemory(name=meta.segment)
        _BINDINGS[meta.segment] = shm
    views: dict[str, np.ndarray] = {}
    for name, shape, dtype, offset in meta.arrays:
        arr = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
        )
        arr.flags.writeable = False  # published data is immutable
        views[name] = arr
    n_parts = sum(1 for name, *_ in meta.arrays if name.startswith("partition."))
    train_classes, test_classes, val_classes = meta.num_classes
    return PreparedData(
        preset=preset,
        seed=meta.seed,
        train=ArrayDataset(views["train.x"], views["train.y"], train_classes),
        test=ArrayDataset(views["test.x"], views["test.y"], test_classes),
        validation=ArrayDataset(
            views["validation.x"], views["validation.y"], val_classes
        ),
        partition=[views[f"partition.{i}"] for i in range(n_parts)],
    )


def _worker_main(
    run_one: Callable[[PlanCell, SharedDataset], bool],
    task_queue: "mp.queues.Queue",
    result_queue: "mp.queues.Queue",
) -> None:
    """Worker loop: pull (cell, descriptor) tasks until the ``None``
    sentinel; report ``("ok", cell_id, resumed)`` per cell, or
    ``("err", cell_id, traceback)`` once and stop."""
    while True:
        task = task_queue.get()
        if task is None:
            return
        cell, meta = task
        try:
            resumed = run_one(cell, meta)
        except BaseException:
            result_queue.put(("err", cell.cell_id, traceback.format_exc()))
            return
        result_queue.put(("ok", cell.cell_id, resumed))


class PersistentPool:
    """Long-lived fork workers streaming cells off one work queue.

    ``run_one(cell, shared) -> resumed`` executes a single cell inside
    a worker; it is captured at construction and inherited through the
    fork, so nothing about it needs to be picklable. Use as a context
    manager: ``__enter__`` forks the workers, ``__exit__`` joins them
    (terminating first if the block is leaving on an error, which is
    what poisons a queue still holding tasks).
    """

    #: Seconds between result polls; bounds how stale the worker
    #: liveness check can be, not how fast results arrive.
    POLL_INTERVAL = 0.2

    def __init__(
        self,
        jobs: int,
        run_one: Callable[[PlanCell, SharedDataset], bool],
    ) -> None:
        if jobs <= 0:
            raise ValueError("jobs must be positive")
        if "fork" not in mp.get_all_start_methods():
            raise ValueError(
                "the persistent pool requires the fork start method "
                "(unavailable on this platform); use jobs=1 and split "
                "work across machines with shard=I/N instead"
            )
        self._ctx = mp.get_context("fork")
        self._run_one = run_one
        self._jobs = jobs
        self._task_queue: mp.queues.Queue = self._ctx.Queue()
        self._result_queue: mp.queues.Queue = self._ctx.Queue()
        self._workers: list = []

    def __enter__(self) -> "PersistentPool":
        # fork point: everything run_one closes over is frozen into the
        # workers here, so callers must fully build the closure first
        self._workers = [
            self._ctx.Process(
                target=_worker_main,
                args=(self._run_one, self._task_queue, self._result_queue),
                daemon=True,
            )
            for _ in range(self._jobs)
        ]
        for worker in self._workers:
            worker.start()
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        self._shutdown(force=exc_type is not None)

    def run(
        self, tasks: list[tuple[PlanCell, SharedDataset]]
    ) -> Iterator[tuple[str, bool]]:
        """Dispatch all tasks and yield ``(cell_id, resumed)`` as cells
        complete (completion order is nondeterministic; artifacts are
        per-cell and deterministic, so callers never depend on it).

        Raises :class:`PoolWorkerError` as soon as any worker reports a
        failure or dies silently while work is outstanding.
        """
        for task in tasks:
            self._task_queue.put(task)
        for _ in self._workers:
            self._task_queue.put(None)
        remaining = len(tasks)
        while remaining:
            try:
                kind, cell_id, payload = self._result_queue.get(
                    timeout=self.POLL_INTERVAL
                )
            except queue_module.Empty:
                if not any(w.is_alive() for w in self._workers):
                    raise PoolWorkerError(
                        "",
                        f"all workers exited with {remaining} cell(s) "
                        f"unaccounted for (a worker died without "
                        f"reporting — killed or crashed hard)",
                    )
                continue
            if kind == "err":
                raise PoolWorkerError(cell_id, payload)
            remaining -= 1
            yield cell_id, payload

    def _shutdown(self, force: bool) -> None:
        if force:
            for worker in self._workers:
                if worker.is_alive():
                    worker.terminate()
        for worker in self._workers:
            worker.join(timeout=10)
            if worker.is_alive():  # refused to die; don't hang the sweep
                worker.kill()
                worker.join(timeout=10)
        for q in (self._task_queue, self._result_queue):
            q.cancel_join_thread()
            q.close()
        self._workers = []
