"""High-level experiment runner: preset + algorithm name → RunHistory.

This is the one place that wires data synthesis, partitioning,
topology, energy traces, engine and algorithm together, so every
figure/table reproduction, example, and sweep cell goes through the
same code path. :func:`build_run` exposes the wired-but-not-yet-run
(engine, algorithm) pair so the sweep orchestrator can restore a
mid-cell checkpoint before running; ``vectorized=True`` selects the
batched multi-node engine (bit-compatible with serial for plain SGD,
so artifacts are identical whichever engine produced them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.base import Algorithm
from ..core.dpsgd import DPSGD, AllReduceDPSGD
from ..core.greedy import Greedy
from ..core.schedule import RoundSchedule
from ..core.skiptrain import SkipTrain, SkipTrainConstrained
from ..data.dataset import ArrayDataset
from ..data.partition import shard_partition, writer_partition
from ..data.synthetic import make_classification_images, synthetic_femnist
from ..energy.accounting import EnergyMeter
from ..energy.traces import EnergyTrace, build_trace
from ..simulation.builder import build_nodes
from ..simulation.engine import EngineConfig, SimulationEngine
from ..simulation.metrics import RunHistory
from ..simulation.rng import RngFactory
from .presets import ExperimentPreset

__all__ = [
    "ExperimentResult",
    "PreparedExperiment",
    "prepare",
    "build_run",
    "run_algorithm",
]


@dataclass
class ExperimentResult:
    """Run history plus the energy meter that produced its energy axis."""

    history: RunHistory
    meter: EnergyMeter
    trace: EnergyTrace

    @property
    def final_accuracy(self) -> float:
        return self.history.final_accuracy()

    @property
    def total_train_energy_wh(self) -> float:
        return self.meter.total_train_wh


@dataclass
class PreparedExperiment:
    """Dataset + partition + topology, reusable across algorithms so
    baseline comparisons see identical data and graphs.

    Following the paper's protocol (§4.2), the held-out data is split
    50/50 into a *validation* set (used to tune Γ_train/Γ_sync in the
    grid search) and a disjoint *test* set (used everywhere else).
    """

    preset: ExperimentPreset
    degree: int
    seed: int
    train: ArrayDataset
    test: ArrayDataset
    validation: ArrayDataset
    partition: list[np.ndarray]
    mixing: "object"  # scipy sparse matrix
    trace: EnergyTrace


def prepare(
    preset: ExperimentPreset,
    degree: int,
    seed: int = 0,
    total_rounds: int | None = None,
) -> PreparedExperiment:
    """Synthesize data, partition it and build the topology/trace for
    one (preset, degree, seed) cell."""
    from ..topology.graphs import regular_graph
    from ..topology.mixing import metropolis_hastings_weights

    rngs = RngFactory(seed)
    spec = preset.spec

    if preset.partition == "shard":
        train, protos = make_classification_images(
            spec, preset.num_train, rngs.stream("data")
        )
        heldout, _ = make_classification_images(
            spec, preset.num_test, rngs.stream("test"), prototypes=protos
        )
        parts = shard_partition(
            train.y, preset.n_nodes, rng=rngs.stream("partition")
        )
    elif preset.partition == "writer":
        if preset.num_writers is None:
            raise ValueError("writer partition requires num_writers")
        train, heldout, tags = synthetic_femnist(
            preset.num_train,
            preset.num_test,
            preset.num_writers,
            rngs.stream("data"),
            spec=spec,
        )
        parts = writer_partition(tags, preset.n_nodes)
    else:
        raise ValueError(f"unknown partition kind {preset.partition!r}")

    # §4.2: validation = 50 % of the held-out samples, disjoint from test
    validation, test = heldout.split(0.5, rngs.stream("val-split"))

    graph = regular_graph(preset.n_nodes, degree, seed=seed)
    mixing = metropolis_hastings_weights(graph)
    trace = build_trace(
        preset.n_nodes, preset.workload, preset.battery_fraction, degree=degree
    )
    return PreparedExperiment(
        preset=preset,
        degree=degree,
        seed=seed,
        train=train,
        test=test,
        validation=validation,
        partition=parts,
        mixing=mixing,
        trace=trace,
    )


def _make_algorithm(
    name: str,
    prepared: PreparedExperiment,
    schedule: RoundSchedule | None,
    total_rounds: int,
    rngs: RngFactory,
) -> Algorithm:
    n = prepared.preset.n_nodes
    if schedule is None:
        schedule = prepared.preset.schedule_for_degree(prepared.degree)
    key = name.lower()
    if key == "d-psgd":
        return DPSGD(n)
    if key == "d-psgd-allreduce":
        return AllReduceDPSGD(n)
    if key == "skiptrain":
        return SkipTrain(n, schedule)
    if key == "skiptrain-constrained":
        return SkipTrainConstrained(
            n,
            schedule,
            budgets=prepared.trace.budget_rounds,
            total_rounds=total_rounds,
            rng=rngs.stream("participation"),
        )
    if key == "greedy":
        return Greedy(n, budgets=prepared.trace.budget_rounds)
    raise KeyError(f"unknown algorithm {name!r}")


def build_run(
    prepared: PreparedExperiment,
    algorithm: str | Algorithm,
    schedule: RoundSchedule | None = None,
    total_rounds: int | None = None,
    eval_every: int | None = None,
    eval_on: str = "test",
    vectorized: bool = False,
    eval_mode: str = "auto",
) -> tuple[SimulationEngine, Algorithm]:
    """Wire the (engine, algorithm) pair for one cell without running.

    Construction is deterministic in ``prepared`` and the overrides:
    two calls yield engines whose runs are bit-identical. The sweep
    orchestrator relies on this to rebuild a killed cell's engine and
    restore a mid-run checkpoint into it. ``eval_mode`` selects the
    evaluation implementation (``"auto"`` follows ``vectorized``; both
    paths return bit-identical accuracies, so artifacts never depend on
    the choice).
    """
    if eval_on not in ("test", "validation"):
        raise ValueError('eval_on must be "test" or "validation"')
    preset = prepared.preset
    rngs = RngFactory(prepared.seed)
    rounds = total_rounds if total_rounds is not None else preset.total_rounds
    cfg = EngineConfig(
        local_steps=preset.local_steps,
        learning_rate=preset.learning_rate,
        total_rounds=rounds,
        eval_every=eval_every if eval_every is not None else preset.eval_every,
        eval_node_sample=preset.eval_node_sample,
        vectorized=vectorized,
        eval_mode=eval_mode,
    )
    model = preset.model_factory(rngs.stream("model"))
    nodes = build_nodes(
        prepared.train, prepared.partition, preset.batch_size, rngs
    )
    meter = EnergyMeter(prepared.trace)
    engine = SimulationEngine(
        model,
        nodes,
        prepared.mixing,
        cfg,
        prepared.test if eval_on == "test" else prepared.validation,
        meter=meter,
        eval_rng=rngs.stream("eval"),
    )
    if isinstance(algorithm, str):
        algo = _make_algorithm(algorithm, prepared, schedule, rounds, rngs)
    else:
        algo = algorithm
    return engine, algo


def run_algorithm(
    prepared: PreparedExperiment,
    algorithm: str | Algorithm,
    schedule: RoundSchedule | None = None,
    total_rounds: int | None = None,
    eval_every: int | None = None,
    eval_on: str = "test",
    vectorized: bool = False,
    eval_mode: str = "auto",
) -> ExperimentResult:
    """Run one algorithm on a prepared experiment cell.

    ``schedule``/``total_rounds``/``eval_every`` override the preset
    (the grid search varies the schedule; Fig. 4 shortens the eval
    cadence). ``eval_on`` selects the evaluation split: ``"test"`` for
    result experiments, ``"validation"`` for hyperparameter tuning
    (the paper's grid search uses the validation set, §4.2–4.3).
    ``vectorized`` runs local training on the batched multi-node
    engine; ``eval_mode`` selects the (bit-identical) evaluation path.
    """
    engine, algo = build_run(
        prepared,
        algorithm,
        schedule=schedule,
        total_rounds=total_rounds,
        eval_every=eval_every,
        eval_on=eval_on,
        vectorized=vectorized,
        eval_mode=eval_mode,
    )
    history = engine.run(algo)
    assert engine.meter is not None
    return ExperimentResult(
        history=history, meter=engine.meter, trace=prepared.trace
    )
