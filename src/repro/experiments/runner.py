"""High-level experiment runner: preset + algorithm name → RunHistory.

This is the one place that wires data synthesis, partitioning,
topology, energy traces, engine and algorithm together, so every
figure/table reproduction, example, and sweep cell goes through the
same code path. :func:`build_run` exposes the wired-but-not-yet-run
(engine, algorithm) pair so the sweep orchestrator can restore a
mid-cell checkpoint before running; ``vectorized=True`` selects the
batched multi-node engine (bit-compatible with serial for plain SGD,
so artifacts are identical whichever engine produced them).

:func:`build_async_run` / :func:`run_async_algorithm` are the
event-driven twins: the same :class:`PreparedExperiment` (identical
data, partition, and regular graph), wired into an
:class:`~repro.simulation.async_engine.AsyncGossipEngine` plus an async
policy. Construction is deterministic in ``prepared`` and the
overrides, which is what lets the sweep orchestrator rebuild a killed
async cell and restore its checkpoint into it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.base import Algorithm
from ..core.dpsgd import DPSGD, AllReduceDPSGD
from ..core.greedy import Greedy
from ..core.schedule import RoundSchedule
from ..core.skiptrain import SkipTrain, SkipTrainConstrained
from ..data.dataset import ArrayDataset
from ..data.partition import (
    dirichlet_partition,
    iid_partition,
    shard_partition,
    writer_partition,
)
from ..data.synthetic import make_classification_images, synthetic_femnist
from ..energy.accounting import EnergyMeter
from ..energy.traces import EnergyTrace, build_trace
from ..simulation.async_engine import (
    AsyncDPSGD,
    AsyncGossipEngine,
    AsyncHistory,
    AsyncPolicy,
    AsyncSkipTrain,
    AsyncSkipTrainConstrained,
)
from ..simulation.builder import build_nodes
from ..simulation.engine import EngineConfig, SimulationEngine
from ..simulation.failures import FailureModel
from ..simulation.metrics import RunHistory
from ..simulation.rng import RngFactory
from .presets import ExperimentPreset

__all__ = [
    "ExperimentResult",
    "AsyncExperimentResult",
    "PreparedData",
    "PreparedExperiment",
    "ASYNC_ALGORITHMS",
    "prepare",
    "prepare_data",
    "prepared_from_data",
    "build_run",
    "run_algorithm",
    "build_async_run",
    "run_async_algorithm",
]

#: Algorithm names that run on the asynchronous gossip engine.
ASYNC_ALGORITHMS = (
    "async-d-psgd",
    "async-skiptrain",
    "async-skiptrain-constrained",
)


def async_eval_cadence(eval_every_rounds: int, n_nodes: int) -> int:
    """Async evaluation cadence in *events* from a round-equivalent
    ``eval_every``: one expected activation per node ≈ one round, so
    the cadence scales by ``n``. The single home of this formula —
    ``repro async-run`` and the sweep orchestrator must agree on it,
    or the same cell would evaluate at different simulated times."""
    return max(1, eval_every_rounds * n_nodes)


@dataclass
class ExperimentResult:
    """Run history plus the energy meter that produced its energy axis."""

    history: RunHistory
    meter: EnergyMeter
    trace: EnergyTrace

    @property
    def final_accuracy(self) -> float:
        return self.history.final_accuracy()

    @property
    def total_train_energy_wh(self) -> float:
        return self.meter.total_train_wh


@dataclass
class PreparedData:
    """The degree-independent half of a prepared cell: synthesized
    datasets plus the sample→node partition.

    Everything here depends only on (preset, seed, partition override,
    Dirichlet α) — never on the topology degree — so one
    :class:`PreparedData` can back every degree of a sweep group. The
    persistent sweep pool exploits exactly this: the parent process
    synthesizes each distinct data key once, publishes the arrays via
    shared memory, and the workers rebind them zero-copy (see
    :mod:`repro.experiments.pool`).
    """

    preset: ExperimentPreset
    seed: int
    train: ArrayDataset
    test: ArrayDataset
    validation: ArrayDataset
    partition: list[np.ndarray]


@dataclass
class PreparedExperiment:
    """Dataset + partition + topology, reusable across algorithms so
    baseline comparisons see identical data and graphs.

    Following the paper's protocol (§4.2), the held-out data is split
    50/50 into a *validation* set (used to tune Γ_train/Γ_sync in the
    grid search) and a disjoint *test* set (used everywhere else).
    """

    preset: ExperimentPreset
    degree: int
    seed: int
    train: ArrayDataset
    test: ArrayDataset
    validation: ArrayDataset
    partition: list[np.ndarray]
    mixing: "object"  # scipy sparse matrix
    trace: EnergyTrace


def prepare_data(
    preset: ExperimentPreset,
    seed: int = 0,
    partition_override: str | None = None,
    dirichlet_alpha: float | None = None,
) -> PreparedData:
    """Synthesize and partition the dataset for one (preset, seed) cell
    group — the expensive, degree-independent half of :func:`prepare`.

    ``partition_override`` replaces the preset's non-IID structure with
    ``"iid"`` (uniform control) or ``"dirichlet"`` (Dirichlet(α) label
    skew, ``dirichlet_alpha`` required) — the data-skew axis of
    scenario specs. The dataset synthesis is untouched; only the
    sample→node assignment changes, drawn from the same ``"partition"``
    rng stream."""
    if partition_override not in (None, "iid", "dirichlet"):
        raise ValueError(
            f'partition_override must be None, "iid" or "dirichlet", '
            f"got {partition_override!r}"
        )
    if partition_override == "dirichlet" and (
        dirichlet_alpha is None or dirichlet_alpha <= 0
    ):
        raise ValueError("dirichlet partition override needs alpha > 0")

    rngs = RngFactory(seed)
    spec = preset.spec

    if preset.partition == "shard":
        train, protos = make_classification_images(
            spec, preset.num_train, rngs.stream("data")
        )
        heldout, _ = make_classification_images(
            spec, preset.num_test, rngs.stream("test"), prototypes=protos
        )
        tags = None
    elif preset.partition == "writer":
        if preset.num_writers is None:
            raise ValueError("writer partition requires num_writers")
        train, heldout, tags = synthetic_femnist(
            preset.num_train,
            preset.num_test,
            preset.num_writers,
            rngs.stream("data"),
            spec=spec,
        )
    else:
        raise ValueError(f"unknown partition kind {preset.partition!r}")

    if partition_override == "iid":
        parts = iid_partition(
            len(train), preset.n_nodes, rng=rngs.stream("partition")
        )
    elif partition_override == "dirichlet":
        parts = dirichlet_partition(
            train.y, preset.n_nodes, dirichlet_alpha,
            rng=rngs.stream("partition"),
        )
    elif preset.partition == "shard":
        parts = shard_partition(
            train.y, preset.n_nodes, rng=rngs.stream("partition")
        )
    else:
        assert tags is not None
        parts = writer_partition(tags, preset.n_nodes)

    # §4.2: validation = 50 % of the held-out samples, disjoint from test
    validation, test = heldout.split(0.5, rngs.stream("val-split"))

    return PreparedData(
        preset=preset,
        seed=seed,
        train=train,
        test=test,
        validation=validation,
        partition=parts,
    )


def prepared_from_data(
    data: PreparedData, degree: int
) -> PreparedExperiment:
    """Bind a degree onto prepared data: derive the regular graph, its
    Metropolis–Hastings mixing matrix, and the energy trace.

    Cheap relative to :func:`prepare_data` and deterministic in
    ``(data, degree)``, so pool workers re-derive it per cell from the
    shared-memory datasets instead of shipping sparse matrices around.
    """
    from ..topology.mixing import metropolis_hastings_weights
    from ..topology.sparse import regular_neighbors

    preset = data.preset
    graph = regular_neighbors(preset.n_nodes, degree, seed=data.seed)
    mixing = metropolis_hastings_weights(graph)
    trace = build_trace(
        preset.n_nodes, preset.workload, preset.battery_fraction, degree=degree
    )
    return PreparedExperiment(
        preset=preset,
        degree=degree,
        seed=data.seed,
        train=data.train,
        test=data.test,
        validation=data.validation,
        partition=data.partition,
        mixing=mixing,
        trace=trace,
    )


def prepare(
    preset: ExperimentPreset,
    degree: int,
    seed: int = 0,
    total_rounds: int | None = None,
    partition_override: str | None = None,
    dirichlet_alpha: float | None = None,
) -> PreparedExperiment:
    """Synthesize data, partition it and build the topology/trace for
    one (preset, degree, seed) cell.

    Composes :func:`prepare_data` (degree-independent synthesis +
    partition) with :func:`prepared_from_data` (topology/trace binding);
    the split exists so the sweep pool can share the expensive half
    across degrees without changing any bytes of the result."""
    data = prepare_data(
        preset,
        seed=seed,
        partition_override=partition_override,
        dirichlet_alpha=dirichlet_alpha,
    )
    return prepared_from_data(data, degree)


def _make_algorithm(
    name: str,
    prepared: PreparedExperiment,
    schedule: RoundSchedule | None,
    total_rounds: int,
    rngs: RngFactory,
) -> Algorithm:
    n = prepared.preset.n_nodes
    if schedule is None:
        schedule = prepared.preset.schedule_for_degree(prepared.degree)
    key = name.lower()
    if key == "d-psgd":
        return DPSGD(n)
    if key == "d-psgd-allreduce":
        return AllReduceDPSGD(n)
    if key == "skiptrain":
        return SkipTrain(n, schedule)
    if key == "skiptrain-constrained":
        return SkipTrainConstrained(
            n,
            schedule,
            budgets=prepared.trace.budget_rounds,
            total_rounds=total_rounds,
            rng=rngs.stream("participation"),
        )
    if key == "greedy":
        return Greedy(n, budgets=prepared.trace.budget_rounds)
    raise KeyError(f"unknown algorithm {name!r}")


def _wire_model_nodes(prepared: PreparedExperiment, rngs: RngFactory):
    """The wiring both engines share: the model drawn from the
    ``"model"`` stream and one node (with its own batch stream) per
    partition cell. The single home of this plumbing — sync and async
    cells of one prepared experiment start from bit-identical models
    and data loaders."""
    preset = prepared.preset
    model = preset.model_factory(rngs.stream("model"))
    nodes = build_nodes(
        prepared.train, prepared.partition, preset.batch_size, rngs
    )
    return model, nodes


def build_run(
    prepared: PreparedExperiment,
    algorithm: str | Algorithm,
    schedule: RoundSchedule | None = None,
    total_rounds: int | None = None,
    eval_every: int | None = None,
    eval_on: str = "test",
    vectorized: bool = False,
    eval_mode: str = "auto",
    mixing=None,
    failure_model: "FailureModel | None" = None,
    churn=None,
    state_backend: str = "memory",
) -> tuple[SimulationEngine, Algorithm]:
    """Wire the (engine, algorithm) pair for one cell without running.

    Construction is deterministic in ``prepared`` and the overrides:
    two calls yield engines whose runs are bit-identical. The sweep
    orchestrator relies on this to rebuild a killed cell's engine and
    restore a mid-run checkpoint into it. ``eval_mode`` selects the
    evaluation implementation (``"auto"`` follows ``vectorized``; both
    paths return bit-identical accuracies, so artifacts never depend on
    the choice).

    The scenario axes ride through here: ``mixing`` overrides the
    prepared static matrix with a per-round provider (dynamic
    topologies, churn/failure-masked subgraphs), ``failure_model``
    injects transient outages, and ``churn`` a
    :class:`~repro.scenarios.churn.ChurnSchedule` — all three default
    off, leaving non-scenario cells byte-identical to before.
    """
    if eval_on not in ("test", "validation"):
        raise ValueError('eval_on must be "test" or "validation"')
    preset = prepared.preset
    rngs = RngFactory(prepared.seed)
    rounds = total_rounds if total_rounds is not None else preset.total_rounds
    cfg = EngineConfig(
        local_steps=preset.local_steps,
        learning_rate=preset.learning_rate,
        total_rounds=rounds,
        eval_every=eval_every if eval_every is not None else preset.eval_every,
        eval_node_sample=preset.eval_node_sample,
        vectorized=vectorized,
        eval_mode=eval_mode,
        state_backend=state_backend,
    )
    model, nodes = _wire_model_nodes(prepared, rngs)
    meter = EnergyMeter(prepared.trace)
    engine = SimulationEngine(
        model,
        nodes,
        mixing if mixing is not None else prepared.mixing,
        cfg,
        prepared.test if eval_on == "test" else prepared.validation,
        meter=meter,
        eval_rng=rngs.stream("eval"),
        failure_model=failure_model,
        churn=churn,
    )
    if isinstance(algorithm, str):
        algo = _make_algorithm(algorithm, prepared, schedule, rounds, rngs)
    else:
        algo = algorithm
    return engine, algo


def run_algorithm(
    prepared: PreparedExperiment,
    algorithm: str | Algorithm,
    schedule: RoundSchedule | None = None,
    total_rounds: int | None = None,
    eval_every: int | None = None,
    eval_on: str = "test",
    vectorized: bool = False,
    eval_mode: str = "auto",
) -> ExperimentResult:
    """Run one algorithm on a prepared experiment cell.

    ``schedule``/``total_rounds``/``eval_every`` override the preset
    (the grid search varies the schedule; Fig. 4 shortens the eval
    cadence). ``eval_on`` selects the evaluation split: ``"test"`` for
    result experiments, ``"validation"`` for hyperparameter tuning
    (the paper's grid search uses the validation set, §4.2–4.3).
    ``vectorized`` runs local training on the batched multi-node
    engine; ``eval_mode`` selects the (bit-identical) evaluation path.
    """
    engine, algo = build_run(
        prepared,
        algorithm,
        schedule=schedule,
        total_rounds=total_rounds,
        eval_every=eval_every,
        eval_on=eval_on,
        vectorized=vectorized,
        eval_mode=eval_mode,
    )
    history = engine.run(algo)
    assert engine.meter is not None
    return ExperimentResult(
        history=history, meter=engine.meter, trace=prepared.trace
    )


# --------------------------------------------------------------------------
# Asynchronous gossip cells
# --------------------------------------------------------------------------


@dataclass
class AsyncExperimentResult:
    """Async run history plus its training-energy total and trace."""

    history: AsyncHistory
    train_energy_wh: float
    trace: EnergyTrace

    @property
    def final_accuracy(self) -> float:
        return self.history.final_accuracy()


def _make_async_policy(
    name: str,
    prepared: PreparedExperiment,
    schedule: RoundSchedule | None,
    activations_per_node: int,
    rngs: RngFactory,
) -> AsyncPolicy:
    if schedule is None:
        schedule = prepared.preset.schedule_for_degree(prepared.degree)
    key = name.lower()
    if key == "async-d-psgd":
        return AsyncDPSGD()
    if key == "async-skiptrain":
        return AsyncSkipTrain(schedule)
    if key == "async-skiptrain-constrained":
        return AsyncSkipTrainConstrained(
            schedule,
            budgets=prepared.trace.budget_rounds,
            expected_activations=activations_per_node,
            rng=rngs.stream("participation"),
        )
    raise KeyError(
        f"unknown async algorithm {name!r}; available: {ASYNC_ALGORITHMS}"
    )


def build_async_run(
    prepared: PreparedExperiment,
    algorithm: str | AsyncPolicy,
    schedule: RoundSchedule | None = None,
    activations_per_node: int | None = None,
    eval_on: str = "test",
    eval_mode: str = "auto",
    failure_model: "FailureModel | None" = None,
    enforce_budgets: bool = False,
    churn=None,
    vectorized: bool = False,
    state_backend: str = "memory",
) -> tuple[AsyncGossipEngine, AsyncPolicy]:
    """Wire the (engine, policy) pair for one async cell without
    running it.

    The cell shares the prepared experiment's dataset, partition, and
    the *same* ``regular_graph(n, degree, seed)`` the synchronous
    mixing matrix was derived from, expressed as neighbor lists.
    Construction is deterministic in ``prepared`` and the overrides;
    two calls yield engines whose runs are bit-identical, which the
    sweep orchestrator relies on to restore mid-run checkpoints.
    ``activations_per_node`` defaults to the preset's ``total_rounds``
    (one expected activation ≈ one round at unit clock rate).
    ``vectorized`` selects disjoint event batching — bit-identical to
    the serial event loop (see
    :mod:`repro.simulation.event_batch`).
    """
    from ..topology.graphs import neighbor_lists
    from ..topology.sparse import regular_neighbors

    if eval_on not in ("test", "validation"):
        raise ValueError('eval_on must be "test" or "validation"')
    preset = prepared.preset
    rngs = RngFactory(prepared.seed)
    activations = (
        activations_per_node
        if activations_per_node is not None
        else preset.total_rounds
    )
    if activations <= 0:
        raise ValueError("activations_per_node must be positive")
    graph = regular_neighbors(preset.n_nodes, prepared.degree,
                              seed=prepared.seed)
    model, nodes = _wire_model_nodes(prepared, rngs)
    engine = AsyncGossipEngine(
        model,
        nodes,
        neighbor_lists(graph),
        prepared.test if eval_on == "test" else prepared.validation,
        local_steps=preset.local_steps,
        learning_rate=preset.learning_rate,
        rng=rngs.stream("events"),
        trace=prepared.trace,
        eval_node_sample=preset.eval_node_sample,
        eval_mode=eval_mode,
        eval_rng=rngs.stream("async-eval"),
        failure_model=failure_model,
        enforce_budgets=enforce_budgets,
        churn=churn,
        vectorized=vectorized,
        state_backend=state_backend,
    )
    if isinstance(algorithm, str):
        policy = _make_async_policy(
            algorithm, prepared, schedule, activations, rngs
        )
    else:
        policy = algorithm
    return engine, policy


def run_async_algorithm(
    prepared: PreparedExperiment,
    algorithm: str | AsyncPolicy,
    schedule: RoundSchedule | None = None,
    activations_per_node: int | None = None,
    eval_every: int | None = None,
    eval_on: str = "test",
    eval_mode: str = "auto",
    failure_model: "FailureModel | None" = None,
    enforce_budgets: bool = False,
    vectorized: bool = False,
) -> AsyncExperimentResult:
    """Run one async gossip policy on a prepared experiment cell.

    ``eval_every`` is in the preset's round-equivalent units (expected
    activations per node); it is scaled by ``n`` into an event cadence,
    so async histories carry about as many records as a sync run of the
    same preset. Defaults to the preset's ``eval_every``.
    ``vectorized`` batches disjoint events through the stacked kernels
    (results bit-identical to the serial event loop).
    """
    engine, policy = build_async_run(
        prepared,
        algorithm,
        schedule=schedule,
        activations_per_node=activations_per_node,
        eval_on=eval_on,
        eval_mode=eval_mode,
        failure_model=failure_model,
        enforce_budgets=enforce_budgets,
        vectorized=vectorized,
    )
    preset = prepared.preset
    activations = (
        activations_per_node
        if activations_per_node is not None
        else preset.total_rounds
    )
    cadence = eval_every if eval_every is not None else preset.eval_every
    history = engine.run(
        policy,
        activations_per_node=activations,
        eval_every=async_eval_cadence(cadence, engine.n_nodes),
    )
    return AsyncExperimentResult(
        history=history,
        train_energy_wh=engine.train_energy_wh,
        trace=prepared.trace,
    )
