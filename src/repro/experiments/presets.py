"""Experiment presets: paper-scale and bench-scale configurations.

``paper`` presets mirror Table 1 exactly (256 nodes, GN-LeNet / LEAF
CNN, 1000–3000 rounds) — runnable but far too slow for CI in pure
NumPy. ``bench`` presets preserve every structural ratio the paper's
phenomena depend on at ~1/40 the FLOPs:

* 2-shard label skew (CIFAR-like) vs writer clustering (FEMNIST-like),
* local-drift regime: enough local steps × learning rate that D-PSGD
  accumulates consensus error (the regime where SkipTrain wins),
* battery budgets covering ≈the paper's τᵢ/T_train ratios
  (0.54/0.65/1.36/0.54 across the four devices),
* three topology densities for the degree sweep.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.schedule import RoundSchedule
from ..data.synthetic import SyntheticSpec
from ..energy.traces import CIFAR10_WORKLOAD, FEMNIST_WORKLOAD, WorkloadSpec
from ..nn import cnn_femnist, gn_lenet_cifar10, small_mlp
from ..nn.module import Module

__all__ = [
    "ExperimentPreset",
    "cifar10_bench",
    "femnist_bench",
    "cifar10_paper",
    "femnist_paper",
    "fleet_preset",
    "async_variant",
    "ASYNC_PRESETS",
    "FLEET_SIZES",
    "PRESETS",
    "get_preset",
]


@dataclass(frozen=True)
class ExperimentPreset:
    """Everything needed to instantiate one dataset/topology/training
    configuration of the paper's evaluation."""

    name: str
    n_nodes: int
    degrees: tuple[int, ...]
    spec: SyntheticSpec
    num_train: int
    num_test: int
    partition: str  # "shard" | "writer"
    model_factory: Callable[[np.random.Generator], Module]
    learning_rate: float
    batch_size: int
    local_steps: int
    total_rounds: int
    eval_every: int
    eval_node_sample: int | None
    workload: WorkloadSpec
    battery_fraction: float
    #: tuned (Γ_train, Γ_sync) per degree — Fig. 3's grid-search output
    tuned_schedules: dict[int, tuple[int, int]] = field(default_factory=dict)
    num_writers: int | None = None

    def schedule_for_degree(self, degree: int) -> RoundSchedule:
        """The tuned schedule for ``degree`` (paper defaults: (4,4) for
        6-regular, (3,3) for 8-regular, (4,2) for 10-regular)."""
        gt, gs = self.tuned_schedules.get(degree, (4, 4))
        return RoundSchedule(gt, gs)


def _bench_mlp(rng: np.random.Generator) -> Module:
    return small_mlp(64, 10, hidden=24, rng=rng)


def _bench_mlp_fem(rng: np.random.Generator) -> Module:
    return small_mlp(64, 16, hidden=24, rng=rng)


def cifar10_bench() -> ExperimentPreset:
    """Scaled CIFAR-10 analogue: 2-shard non-IID, high-drift regime."""
    return ExperimentPreset(
        name="cifar10-bench",
        n_nodes=32,
        degrees=(3, 4, 6),
        spec=SyntheticSpec(
            num_classes=10, channels=1, image_size=8,
            noise_std=2.5, jitter_std=0.6, prototype_resolution=4,
        ),
        num_train=192 * 32,
        num_test=1000,
        partition="shard",
        model_factory=_bench_mlp,
        learning_rate=0.4,
        batch_size=8,
        local_steps=10,
        total_rounds=120,
        eval_every=16,
        eval_node_sample=16,
        workload=CIFAR10_WORKLOAD,
        battery_fraction=0.012,
        tuned_schedules={3: (4, 4), 4: (3, 3), 6: (4, 2)},
    )


def femnist_bench() -> ExperimentPreset:
    """Scaled FEMNIST analogue: writer-clustered, milder heterogeneity."""
    return ExperimentPreset(
        name="femnist-bench",
        n_nodes=32,
        degrees=(3, 4, 6),
        spec=SyntheticSpec(
            num_classes=16, channels=1, image_size=8,
            noise_std=1.5, jitter_std=0.5, prototype_resolution=4,
        ),
        num_train=192 * 32,
        num_test=1000,
        partition="writer",
        model_factory=_bench_mlp_fem,
        learning_rate=0.25,
        batch_size=8,
        local_steps=7,
        total_rounds=120,
        eval_every=16,
        eval_node_sample=16,
        workload=FEMNIST_WORKLOAD,
        battery_fraction=0.06,
        tuned_schedules={3: (4, 4), 4: (3, 3), 6: (4, 2)},
        num_writers=40,
    )


def cifar10_paper() -> ExperimentPreset:
    """Table 1's CIFAR-10 row at full scale (slow: days in pure NumPy)."""
    return ExperimentPreset(
        name="cifar10-paper",
        n_nodes=256,
        degrees=(6, 8, 10),
        spec=SyntheticSpec(
            num_classes=10, channels=3, image_size=32,
            noise_std=2.5, jitter_std=0.6, prototype_resolution=8,
        ),
        num_train=50_000,
        num_test=5_000,
        partition="shard",
        model_factory=lambda rng: gn_lenet_cifar10(rng),
        learning_rate=0.1,
        batch_size=32,
        local_steps=20,
        total_rounds=1000,
        eval_every=50,
        eval_node_sample=32,
        workload=CIFAR10_WORKLOAD,
        battery_fraction=0.10,
        tuned_schedules={6: (4, 4), 8: (3, 3), 10: (4, 2)},
    )


def femnist_paper() -> ExperimentPreset:
    """Table 1's FEMNIST row at full scale (slow)."""
    return ExperimentPreset(
        name="femnist-paper",
        n_nodes=256,
        degrees=(6, 8, 10),
        spec=SyntheticSpec(
            num_classes=62, channels=1, image_size=28,
            noise_std=2.0, jitter_std=0.5, prototype_resolution=7,
        ),
        num_train=150_000,
        num_test=20_416,
        partition="writer",
        model_factory=lambda rng: cnn_femnist(rng),
        learning_rate=0.1,
        batch_size=16,
        local_steps=7,
        total_rounds=3000,
        eval_every=100,
        eval_node_sample=32,
        workload=FEMNIST_WORKLOAD,
        battery_fraction=0.50,
        tuned_schedules={6: (4, 4), 8: (3, 3), 10: (4, 2)},
        num_writers=400,
    )


def _fleet_mlp(rng: np.random.Generator) -> Module:
    return small_mlp(16, 4, hidden=8, rng=rng)


#: Node counts of the fleet preset family (``n{size}-fleet``).
FLEET_SIZES: tuple[int, ...] = (1024, 4096, 16384)


def fleet_preset(n_nodes: int) -> ExperimentPreset:
    """Fleet-scale smoke preset: the *node axis* at 1024–16384 nodes
    with everything else shrunk to the minimum that still exercises the
    full pipeline (4-regular topology, 2-shard label skew, a 172-param
    MLP on 4×4 images, 8 samples per node). The point is not learning
    quality but the memory/throughput envelope: with the sparse
    ``NeighborList`` representation and CSR mixing, a cell's footprint
    is O(E + n·dim) — at n=16384 the state matrix is ~22 MiB where a
    single dense n×n intermediate would be 2 GiB. Registered in the
    preset zoo (and therefore as scenarios, so churn/failure axes
    compose); benchmarked by ``train_rounds_n{1024,4096,16384}`` in
    BENCH_throughput.json with peak-RSS gating."""
    if n_nodes < 2:
        raise ValueError("fleet presets need at least 2 nodes")
    return ExperimentPreset(
        name=f"n{n_nodes}-fleet",
        n_nodes=n_nodes,
        degrees=(4,),
        spec=SyntheticSpec(
            num_classes=4, channels=1, image_size=4,
            noise_std=1.5, jitter_std=0.4, prototype_resolution=2,
        ),
        num_train=8 * n_nodes,
        num_test=256,
        partition="shard",
        model_factory=_fleet_mlp,
        learning_rate=0.2,
        batch_size=4,
        local_steps=1,
        total_rounds=8,
        eval_every=4,
        eval_node_sample=64,
        workload=CIFAR10_WORKLOAD,
        battery_fraction=0.012,
        tuned_schedules={4: (2, 2)},
    )


def async_variant(base: ExperimentPreset) -> ExperimentPreset:
    """The asynchronous twin of a synchronous preset: same data,
    partition, model, topology densities, and energy trace, renamed
    ``<name>-async``. For async cells ``total_rounds`` is reinterpreted
    as the *expected activations per node* (unit-rate Poisson clocks
    make one expected activation the async analogue of one round) and
    ``eval_every`` as the evaluation cadence in expected
    activations-per-node units."""
    return dataclasses.replace(base, name=base.name + "-async")


PRESETS: dict[str, Callable[[], ExperimentPreset]] = {
    "cifar10-bench": cifar10_bench,
    "femnist-bench": femnist_bench,
    "cifar10-paper": cifar10_paper,
    "femnist-paper": femnist_paper,
    "cifar10-bench-async": lambda: async_variant(cifar10_bench()),
    "femnist-bench-async": lambda: async_variant(femnist_bench()),
    "cifar10-paper-async": lambda: async_variant(cifar10_paper()),
    "femnist-paper-async": lambda: async_variant(femnist_paper()),
    **{
        f"n{size}-fleet": (lambda size=size: fleet_preset(size))
        for size in FLEET_SIZES
    },
}

#: Preset names whose cells run on the asynchronous gossip engine.
ASYNC_PRESETS: tuple[str, ...] = tuple(
    name for name in PRESETS if name.endswith("-async")
)


def get_preset(name: str) -> ExperimentPreset:
    """Look up a preset by name."""
    if name not in PRESETS:
        raise KeyError(f"unknown preset {name!r}; available: {sorted(PRESETS)}")
    return PRESETS[name]()
