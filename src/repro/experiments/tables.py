"""Per-table reproduction entry points (Tables 1–4 of the paper).

``table3_from_artifacts`` renders the mean±std version of Table 3 from
aggregated sweep CSV rows; ``table4_from_artifacts`` rebuilds Table 4
from raw sweep artifacts. Both regenerate paper outputs from artifacts
instead of recomputation (run the cells once with ``repro sweep``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy.battery import table2_rows
from ..nn import PAPER_CIFAR10_PARAMS, PAPER_FEMNIST_PARAMS, cnn_femnist, gn_lenet_cifar10
from .figures import Figure5Result, Figure6Result, figure5, figure6
from .presets import ExperimentPreset
from .reporting import render_table

__all__ = [
    "table1",
    "table2",
    "Table3Result",
    "table3",
    "table3_from_artifacts",
    "Table4Result",
    "table4",
    "table4_from_artifacts",
]


def table1() -> str:
    """Render Table 1 (simulation hyperparameters), asserting the model
    sizes are reproduced by the actual architectures."""
    cifar_params = gn_lenet_cifar10().num_parameters()
    femnist_params = cnn_femnist().num_parameters()
    if cifar_params != PAPER_CIFAR10_PARAMS:
        raise AssertionError(f"CIFAR model has {cifar_params} params")
    if femnist_params != PAPER_FEMNIST_PARAMS:
        raise AssertionError(f"FEMNIST model has {femnist_params} params")
    rows = [
        ["η (learning rate)", 0.1, 0.1],
        ["|ξ| (batch size)", 32, 16],
        ["E (local steps)", 20, 7],
        ["|x| (model size)", cifar_params, femnist_params],
        ["T (total rounds)", 1000, 3000],
    ]
    return render_table(["hyperparameter", "CIFAR-10", "FEMNIST"], rows,
                        title="Table 1: simulation hyperparameters")


def table2() -> str:
    """Render Table 2 (energy traces) from the trace pipeline."""
    rows = [
        [r.device, r.cifar10_mwh, r.femnist_mwh, r.cifar10_rounds, r.femnist_rounds]
        for r in table2_rows()
    ]
    return render_table(
        ["device", "CIFAR-10 mWh", "FEMNIST mWh", "CIFAR-10 rounds", "FEMNIST rounds"],
        rows,
        title="Table 2: energy traces",
    )


@dataclass
class Table3Result:
    """Training energy + final accuracy for SkipTrain vs D-PSGD."""

    figure5: Figure5Result

    def rows(self) -> list[list[object]]:
        out: list[list[object]] = []
        for algo, results in (
            ("SkipTrain", self.figure5.skiptrain),
            ("D-PSGD", self.figure5.dpsgd),
        ):
            row: list[object] = [algo]
            for deg in self.figure5.degrees:
                row.append(results[deg].meter.total_train_wh)
            for deg in self.figure5.degrees:
                row.append(results[deg].history.final_accuracy() * 100)
            out.append(row)
        return out

    def energy_ratio(self, degree: int) -> float:
        """D-PSGD training energy / SkipTrain training energy (the paper
        reports ≈2×)."""
        return (
            self.figure5.dpsgd[degree].meter.total_train_wh
            / self.figure5.skiptrain[degree].meter.total_train_wh
        )

    def accuracy_gain(self, degree: int) -> float:
        """SkipTrain minus D-PSGD final accuracy (percentage points)."""
        return 100.0 * (
            self.figure5.skiptrain[degree].history.final_accuracy()
            - self.figure5.dpsgd[degree].history.final_accuracy()
        )

    def render(self) -> str:
        degs = self.figure5.degrees
        headers = (
            ["algorithm"]
            + [f"energy Wh ({d}-reg)" for d in degs]
            + [f"accuracy % ({d}-reg)" for d in degs]
        )
        return render_table(headers, self.rows(),
                            title="Table 3: SkipTrain vs D-PSGD")


def table3(preset: ExperimentPreset, seed: int = 0) -> Table3Result:
    """Reproduce Table 3 for one dataset preset."""
    return Table3Result(figure5=figure5(preset, seed=seed))


def table3_from_artifacts(
    results_dir: str, preset_name: str, total_rounds: int | None = None
) -> str:
    """Render Table 3 (SkipTrain vs D-PSGD energy/accuracy per degree)
    from aggregated sweep artifacts — mean ± std over however many
    seeds the sweep covered, instead of the single-seed recomputation
    of :func:`table3`. With ``total_rounds=None`` the rounds value is
    discovered from the artifacts; a results directory mixing several
    rounds values (e.g. a smoke sweep next to the full one) is
    ambiguous and fails loudly rather than comparing algorithms run
    for different round counts."""
    from .artifacts import aggregate_results

    rows, _ = aggregate_results(results_dir)
    wanted = {"skiptrain", "d-psgd"}
    matching = [
        row for row in rows
        if row.preset == preset_name and row.algorithm in wanted
        and not row.scenario  # scenario compositions are not baselines
    ]
    rounds_present = sorted({row.total_rounds for row in matching})
    if total_rounds is None and len(rounds_present) > 1:
        raise ValueError(
            f"artifacts for preset {preset_name!r} mix total_rounds "
            f"{rounds_present}; pass an explicit total_rounds"
        )
    by_algo: dict[str, dict[int, object]] = {}
    for row in matching:
        if total_rounds is None or row.total_rounds == total_rounds:
            by_algo.setdefault(row.algorithm, {})[row.degree] = row
    missing = wanted - set(by_algo)
    if missing:
        raise FileNotFoundError(
            f"no artifacts for {sorted(missing)} on preset {preset_name!r} "
            f"under {results_dir}; run repro sweep first"
        )
    degrees = sorted(
        set(by_algo["skiptrain"]) & set(by_algo["d-psgd"])
    )
    if not degrees:
        raise FileNotFoundError(
            f"no common degree has both skiptrain and d-psgd artifacts "
            f"for preset {preset_name!r} under {results_dir}"
        )
    table_rows = []
    for algorithm in ("skiptrain", "d-psgd"):
        row: list[object] = [algorithm]
        for deg in degrees:
            row.append(by_algo[algorithm][deg].train_wh_mean)
        for deg in degrees:
            r = by_algo[algorithm][deg]
            row.append(
                f"{r.final_accuracy_mean * 100:.2f} "
                f"±{r.final_accuracy_std * 100:.2f} (n={r.n_seeds})"
            )
        table_rows.append(row)
    headers = (
        ["algorithm"]
        + [f"energy Wh ({d}-reg)" for d in degrees]
        + [f"accuracy % ({d}-reg)" for d in degrees]
    )
    return render_table(
        headers, table_rows,
        title=f"Table 3: SkipTrain vs D-PSGD ({preset_name}, from artifacts)",
    )


@dataclass
class Table4Result:
    """Constrained-setting energy budgets and accuracies."""

    figure6: Figure6Result

    def rows(self) -> list[list[object]]:
        degs = self.figure6.degrees
        names = ["SkipTrain-constrained", "Greedy", "D-PSGD"]
        out: list[list[object]] = []
        for name in names:
            row: list[object] = [name]
            for deg in degs:
                row.append(self.figure6.budget_wh(deg))
            for deg in degs:
                row.append(self.figure6.accuracy_at_budget(deg)[name] * 100)
            out.append(row)
        return out

    def ordering_holds(self, degree: int) -> bool:
        """Paper's headline ordering: constrained ≥ Greedy ≥ D-PSGD at
        equal energy."""
        accs = self.figure6.accuracy_at_budget(degree)
        return (
            accs["SkipTrain-constrained"] >= accs["Greedy"] >= accs["D-PSGD"]
        )

    def render(self) -> str:
        degs = self.figure6.degrees
        headers = (
            ["algorithm"]
            + [f"budget Wh ({d}-reg)" for d in degs]
            + [f"accuracy % ({d}-reg)" for d in degs]
        )
        return render_table(headers, self.rows(),
                            title="Table 4: energy-constrained setting")


def table4(preset: ExperimentPreset, seed: int = 0) -> Table4Result:
    """Reproduce Table 4 for one dataset preset."""
    return Table4Result(figure6=figure6(preset, seed=seed))


def table4_from_artifacts(
    results_dir: str, preset: ExperimentPreset, seed: int = 0
) -> Table4Result:
    """Rebuild Table 4 from raw sweep artifacts: the three constrained-
    setting algorithms' histories/energy totals are reloaded for every
    preset degree (missing cells raise with the sweep command to run).

    One caveat relative to :func:`table4`: the recomputing path runs
    D-PSGD on a 4× finer evaluation cadence so its accuracy-at-budget
    readout interpolates tightly; a standard sweep cell evaluates on
    the preset cadence, so the D-PSGD column is read off coarser
    evaluation points.
    """
    from .artifacts import load_cell_result, resolve_cell

    by_algo: dict[str, dict[int, object]] = {
        "skiptrain-constrained": {}, "greedy": {}, "d-psgd": {},
    }
    for algorithm, results in by_algo.items():
        for deg in preset.degrees:
            cell = resolve_cell(results_dir, preset.name, algorithm, deg, seed)
            results[deg] = load_cell_result(results_dir, cell)
    return Table4Result(
        figure6=Figure6Result(
            degrees=preset.degrees,
            constrained=by_algo["skiptrain-constrained"],
            greedy=by_algo["greedy"],
            dpsgd=by_algo["d-psgd"],
        )
    )
