"""Multi-seed sweeps with mean ± std aggregation.

Single-seed comparisons can flip on noise; the paper itself reports
mean curves with std bands (Fig. 4). This module repeats an experiment
cell over seeds and aggregates final accuracy and energy, giving every
headline comparison an uncertainty estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.schedule import RoundSchedule
from .presets import ExperimentPreset
from .reporting import render_table
from .runner import prepare, run_algorithm

__all__ = ["SweepCell", "SweepResult", "seed_sweep", "compare_algorithms"]


@dataclass(frozen=True)
class SweepCell:
    """Aggregated outcome of one algorithm over seeds."""

    algorithm: str
    accuracies: tuple[float, ...]
    train_energies_wh: tuple[float, ...]

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.accuracies))

    @property
    def std_accuracy(self) -> float:
        return float(np.std(self.accuracies))

    @property
    def mean_energy_wh(self) -> float:
        return float(np.mean(self.train_energies_wh))

    @property
    def n_seeds(self) -> int:
        return len(self.accuracies)


@dataclass
class SweepResult:
    """All algorithms' aggregated cells for one preset/degree."""

    degree: int
    cells: dict[str, SweepCell]

    def render(self) -> str:
        rows = [
            [
                cell.algorithm,
                cell.mean_accuracy * 100,
                cell.std_accuracy * 100,
                cell.mean_energy_wh,
                cell.n_seeds,
            ]
            for cell in self.cells.values()
        ]
        return render_table(
            ["algorithm", "accuracy % (mean)", "± std", "energy Wh (mean)",
             "seeds"],
            rows,
            title=f"Seed sweep, {self.degree}-regular",
        )

    def significant_gap(self, a: str, b: str) -> bool:
        """Whether algorithm ``a``'s mean accuracy exceeds ``b``'s by
        more than one pooled standard deviation — a coarse but honest
        significance screen for small seed counts."""
        ca, cb = self.cells[a], self.cells[b]
        pooled = float(np.sqrt((ca.std_accuracy**2 + cb.std_accuracy**2) / 2))
        return ca.mean_accuracy - cb.mean_accuracy > pooled


def seed_sweep(
    preset: ExperimentPreset,
    algorithm: str,
    seeds: tuple[int, ...],
    degree: int | None = None,
    schedule: RoundSchedule | None = None,
) -> SweepCell:
    """Run one algorithm across seeds (data, partition, topology, and
    model init all re-drawn per seed)."""
    if not seeds:
        raise ValueError("need at least one seed")
    deg = degree if degree is not None else preset.degrees[0]
    accs, energies = [], []
    for seed in seeds:
        prepared = prepare(preset, deg, seed=seed)
        result = run_algorithm(prepared, algorithm, schedule=schedule)
        accs.append(result.history.final_accuracy())
        energies.append(result.meter.total_train_wh)
    return SweepCell(
        algorithm=algorithm,
        accuracies=tuple(accs),
        train_energies_wh=tuple(energies),
    )


def compare_algorithms(
    preset: ExperimentPreset,
    algorithms: tuple[str, ...],
    seeds: tuple[int, ...],
    degree: int | None = None,
) -> SweepResult:
    """Sweep several algorithms over the same seeds."""
    deg = degree if degree is not None else preset.degrees[0]
    cells = {
        name: seed_sweep(preset, name, seeds, degree=deg)
        for name in algorithms
    }
    return SweepResult(degree=deg, cells=cells)
