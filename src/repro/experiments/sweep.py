"""Multi-seed sweeps: in-memory comparison and the resumable, sharded
on-disk orchestrator.

Single-seed comparisons can flip on noise; the paper itself reports
mean curves with std bands (Fig. 4). Two execution styles live here:

* :func:`seed_sweep` / :func:`compare_algorithms` — the original
  in-memory path: repeat a cell over seeds, aggregate mean ± std,
  render a table. Everything is lost on a crash.
* :func:`run_sweep` / :func:`run_cell` — the production path: execute
  a deterministic :func:`~repro.experiments.artifacts.build_plan`
  (optionally one ``--shard I/N`` slice of it), write one JSON
  artifact per completed cell under ``<results>/raw/``, skip cells
  whose artifact already exists, and checkpoint long cells every
  ``checkpoint_every`` rounds via
  :func:`~repro.simulation.checkpoint.save_run_checkpoint` so a killed
  3000-round run resumes mid-cell instead of from round 0. With
  ``jobs=N`` the shard's cells additionally fan out to persistent fork
  workers fed from a shared-memory dataset cache
  (:mod:`repro.experiments.pool`; ``pool="fork"`` keeps the legacy
  per-group pool). Cells are independent, so the artifact set stays
  byte-identical to a serial run. Aggregation to CSV is a separate
  step (``repro aggregate``), tolerant of partial sweeps.

Both execution backends ride the same orchestration: ``kind="async"``
cells run on the event-driven gossip engine with identical
skip/shard/jobs/checkpoint semantics (see :func:`run_cell`).
"""

from __future__ import annotations

import multiprocessing as mp
import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.schedule import RoundSchedule
from ..simulation.checkpoint import (
    load_async_run_checkpoint,
    load_run_checkpoint,
    save_async_run_checkpoint,
    save_run_checkpoint,
)
from .artifacts import (
    PlanCell,
    artifact_path,
    checkpoint_path,
    shard_cells,
    write_async_cell_artifact,
    write_cell_artifact,
)
from .presets import ExperimentPreset, get_preset
from .reporting import render_table
from .runner import (
    AsyncExperimentResult,
    ExperimentResult,
    async_eval_cadence,
    build_async_run,
    build_run,
    prepare,
    prepare_data,
    prepared_from_data,
    run_algorithm,
)

__all__ = [
    "SweepCell",
    "SweepResult",
    "seed_sweep",
    "compare_algorithms",
    "SweepRunStats",
    "cell_data_coords",
    "resolve_auto_jobs",
    "run_cell",
    "run_sweep",
    "sweep_result_from_artifacts",
]


@dataclass(frozen=True)
class SweepCell:
    """Aggregated outcome of one algorithm over seeds."""

    algorithm: str
    accuracies: tuple[float, ...]
    train_energies_wh: tuple[float, ...]

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.accuracies))

    @property
    def std_accuracy(self) -> float:
        return float(np.std(self.accuracies))

    @property
    def mean_energy_wh(self) -> float:
        return float(np.mean(self.train_energies_wh))

    @property
    def n_seeds(self) -> int:
        return len(self.accuracies)


@dataclass
class SweepResult:
    """All algorithms' aggregated cells for one preset/degree."""

    degree: int
    cells: dict[str, SweepCell]

    def render(self) -> str:
        rows = [
            [
                cell.algorithm,
                cell.mean_accuracy * 100,
                cell.std_accuracy * 100,
                cell.mean_energy_wh,
                cell.n_seeds,
            ]
            for cell in self.cells.values()
        ]
        return render_table(
            ["algorithm", "accuracy % (mean)", "± std", "energy Wh (mean)",
             "seeds"],
            rows,
            title=f"Seed sweep, {self.degree}-regular",
        )

    def significant_gap(self, a: str, b: str) -> bool:
        """Whether algorithm ``a``'s mean accuracy exceeds ``b``'s by
        more than one pooled standard deviation — a coarse but honest
        significance screen for small seed counts."""
        ca, cb = self.cells[a], self.cells[b]
        pooled = float(np.sqrt((ca.std_accuracy**2 + cb.std_accuracy**2) / 2))
        return ca.mean_accuracy - cb.mean_accuracy > pooled


def seed_sweep(
    preset: ExperimentPreset,
    algorithm: str,
    seeds: tuple[int, ...],
    degree: int | None = None,
    schedule: RoundSchedule | None = None,
) -> SweepCell:
    """Run one algorithm across seeds (data, partition, topology, and
    model init all re-drawn per seed)."""
    if not seeds:
        raise ValueError("need at least one seed")
    deg = degree if degree is not None else preset.degrees[0]
    accs, energies = [], []
    for seed in seeds:
        prepared = prepare(preset, deg, seed=seed)
        result = run_algorithm(prepared, algorithm, schedule=schedule)
        accs.append(result.history.final_accuracy())
        energies.append(result.meter.total_train_wh)
    return SweepCell(
        algorithm=algorithm,
        accuracies=tuple(accs),
        train_energies_wh=tuple(energies),
    )


def compare_algorithms(
    preset: ExperimentPreset,
    algorithms: tuple[str, ...],
    seeds: tuple[int, ...],
    degree: int | None = None,
) -> SweepResult:
    """Sweep several algorithms over the same seeds."""
    deg = degree if degree is not None else preset.degrees[0]
    cells = {
        name: seed_sweep(preset, name, seeds, degree=deg)
        for name in algorithms
    }
    return SweepResult(degree=deg, cells=cells)


# --------------------------------------------------------------------------
# Resumable on-disk orchestration (one JSON artifact per cell)
# --------------------------------------------------------------------------


@dataclass
class SweepRunStats:
    """What one :func:`run_sweep` invocation did with its shard.

    ``prepped`` records the data keys the persistent pool published to
    shared memory, in publication order — one entry per distinct
    (preset, seed, partition-override, α) dataset, however many cells
    shared it (empty for the serial and legacy fork backends). The
    parallel-correctness tests assert on it to prove each dataset is
    prepared exactly once per sweep.

    ``jobs_resolved`` is the worker count the sweep actually ran with
    after resolving ``jobs="auto"`` (1 for a serial run — including the
    single-CPU fallback); ``jobs_source`` records where that count came
    from: ``"explicit"`` for a literal ``jobs=N``, else the
    :func:`resolve_auto_jobs` source (``"sched_getaffinity"`` or
    ``"cpu_count"``).
    """

    ran: list[PlanCell] = field(default_factory=list)
    skipped: list[PlanCell] = field(default_factory=list)
    resumed: list[PlanCell] = field(default_factory=list)
    prepped: list[tuple] = field(default_factory=list)
    jobs_resolved: int = 1
    jobs_source: str = "explicit"


def resolve_auto_jobs() -> tuple[int, str]:
    """Resolve ``jobs="auto"`` to ``(worker_count, source)``.

    Prefers the scheduler affinity mask — ``len(os.sched_getaffinity(
    0))`` — which reflects cgroup cpusets and ``taskset`` restrictions
    in containers, where ``os.cpu_count()`` reports the host's full
    core count and over-subscribes the pool. Falls back to
    ``os.cpu_count()`` on platforms without affinity support (macOS).
    """
    try:
        return max(1, len(os.sched_getaffinity(0))), "sched_getaffinity"
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1), "cpu_count"


def run_cell(
    preset: ExperimentPreset,
    cell: PlanCell,
    results_dir: str | os.PathLike,
    *,
    prepared=None,
    checkpoint_every: int = 0,
    vectorized: bool = False,
    node_shards: int = 1,
    state_backend: str = "memory",
    round_hook: Callable | None = None,
    scenario_lookup: Callable | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> "tuple[ExperimentResult | AsyncExperimentResult, bool]":
    """Execute one plan cell and write its raw artifact.

    If a mid-run checkpoint for the cell exists (a previous process was
    killed partway), the engine, rng streams, algorithm state, and
    partial history are restored from it and the run continues from the
    checkpointed round — bit-identical to an uninterrupted run. With
    ``checkpoint_every > 0``, a fresh checkpoint is written at the
    first evaluation round at least that many rounds after the last
    one (checkpoints land on evaluation rounds because only those
    resume exactly; see :meth:`SimulationEngine.run`). The checkpoint
    is deleted once the artifact is safely on disk.

    ``kind="async"`` cells dispatch to the event-driven engine: the
    same skip/resume/checkpoint contract, with ``checkpoint_every``
    counted in the cell's round-equivalent unit (expected activations
    per node — ``checkpoint_every × n`` events) and the hook invoked as
    ``round_hook(engine, event, history, event)`` after every event.
    Async resume is exact from *any* event boundary.

    Cells referencing a scenario (``cell.scenario``) are compiled via
    :func:`repro.scenarios.compile_run` — churn, failures, dynamic
    topology, energy and data-skew axes all active — and then ride the
    exact same checkpoint/resume/artifact path. ``scenario_lookup``
    overrides the registry lookup (tests inject specs the registry
    does not know).

    ``node_shards > 1`` shards the cell's *node axis* across fork
    workers (synchronous cells only — the async engine trains one node
    per event, so there is no node loop to shard); artifacts and
    checkpoints stay byte-identical to an unsharded run. The
    ``state_backend`` selects where the ``(n, dim)`` state matrix lives
    (see :mod:`repro.simulation.state_store`) and likewise never
    changes any bit of the output.

    ``progress`` is a pure observability hook, called as
    ``progress(done, total)`` after every completed unit of work —
    rounds for synchronous cells, events for async cells (``total =
    total_rounds × n``) — so supervising processes (the serve daemon's
    rounds/sec and events/sec accounting) can meter execution without
    touching engine state. It must not mutate anything the engine
    reads; it runs after ``round_hook``.

    Returns ``(result, resumed_from_checkpoint)``.
    """
    if preset.name != cell.preset:
        raise ValueError(
            f"cell {cell.cell_id} belongs to preset {cell.preset!r}, "
            f"got {preset.name!r}"
        )
    if node_shards < 1:
        raise ValueError("node_shards must be >= 1")
    if node_shards > 1 and cell.kind == "async":
        raise ValueError(
            f"cell {cell.cell_id} is async: node sharding applies to "
            f"synchronous cells only (the event loop trains one node at "
            f"a time)"
        )
    if cell.scenario:
        return _run_scenario_cell(
            preset, cell, results_dir, prepared=prepared,
            checkpoint_every=checkpoint_every, vectorized=vectorized,
            node_shards=node_shards, state_backend=state_backend,
            round_hook=round_hook, scenario_lookup=scenario_lookup,
            progress=progress,
        )
    if prepared is None:
        prepared = prepare(preset, cell.degree, seed=cell.seed)
    if cell.kind == "async":
        engine, policy = build_async_run(
            prepared, cell.algorithm, activations_per_node=cell.total_rounds,
            vectorized=vectorized, state_backend=state_backend,
        )
        return _execute_async_cell(
            engine, policy, cell, results_dir, prepared.trace,
            eval_every_rounds=preset.eval_every,
            checkpoint_every=checkpoint_every, vectorized=vectorized,
            round_hook=round_hook, progress=progress,
        )
    engine, algo = build_run(
        prepared,
        cell.algorithm,
        total_rounds=cell.total_rounds,
        vectorized=vectorized,
        state_backend=state_backend,
    )
    return _execute_sync_cell(
        engine, algo, cell, results_dir, prepared.trace,
        checkpoint_every=checkpoint_every, vectorized=vectorized,
        node_shards=node_shards, round_hook=round_hook, progress=progress,
    )


def _run_scenario_cell(
    preset: ExperimentPreset,
    cell: PlanCell,
    results_dir: str | os.PathLike,
    *,
    prepared=None,
    checkpoint_every: int,
    vectorized: bool,
    node_shards: int = 1,
    state_backend: str = "memory",
    round_hook: Callable | None,
    scenario_lookup: Callable | None,
    progress: Callable[[int, int], None] | None = None,
) -> "tuple[ExperimentResult | AsyncExperimentResult, bool]":
    """The ``cell.scenario`` execution path of :func:`run_cell`:
    compile the registered spec with the cell's seed/rounds, then run
    through the shared checkpointed execution helpers. Compilation is
    deterministic, which is what lets a killed scenario cell rebuild
    its engine and resume byte-identically. ``prepared`` skips data
    synthesis inside :func:`~repro.scenarios.compile.compile_run` —
    pool workers pass the shared-memory rebind, which must have been
    prepared against the spec-resolved base preset and degree (the
    degree drift guard below still fires if the registry moved)."""
    from ..scenarios.compile import compile_run
    from ..scenarios.registry import get_scenario

    lookup = scenario_lookup if scenario_lookup is not None else get_scenario
    spec = lookup(cell.scenario)
    if checkpoint_every > 0 and spec.failures.kind == "independent":
        # fail before any training, not rounds in at the first
        # checkpoint save (the rng-backed failure model cannot
        # round-trip through checkpoints)
        raise ValueError(
            f"scenario {spec.name!r} uses rng-backed "
            f'"independent" failures, which run checkpoints cannot '
            f"capture; drop checkpoint_every or switch the scenario to "
            f'a deterministic "window" failure model'
        )
    if spec.preset != cell.preset or spec.algorithm.name != cell.algorithm:
        raise ValueError(
            f"cell {cell.cell_id} records preset/algorithm "
            f"{cell.preset!r}/{cell.algorithm!r} but scenario "
            f"{spec.name!r} resolves to {spec.preset!r}/"
            f"{spec.algorithm.name!r} — the registry changed since the "
            f"plan was built"
        )
    compiled = compile_run(
        spec,
        kind=cell.kind,
        seed=cell.seed,
        total_rounds=cell.total_rounds,
        preset=preset,
        prepared=prepared,
        vectorized=vectorized,
        state_backend=state_backend,
    )
    if compiled.prepared.degree != cell.degree:
        raise ValueError(
            f"cell {cell.cell_id} records degree {cell.degree} but "
            f"scenario {spec.name!r} resolves to degree "
            f"{compiled.prepared.degree} — the registry changed since "
            f"the plan was built"
        )
    if cell.kind == "async":
        return _execute_async_cell(
            compiled.engine, compiled.algorithm, cell, results_dir,
            compiled.prepared.trace, eval_every_rounds=compiled.eval_every,
            checkpoint_every=checkpoint_every, vectorized=vectorized,
            round_hook=round_hook, progress=progress,
        )
    return _execute_sync_cell(
        compiled.engine, compiled.algorithm, cell, results_dir,
        compiled.prepared.trace, checkpoint_every=checkpoint_every,
        vectorized=vectorized, node_shards=node_shards,
        round_hook=round_hook, progress=progress,
    )


def _execute_sync_cell(
    engine,
    algo,
    cell: PlanCell,
    results_dir: str | os.PathLike,
    trace,
    *,
    checkpoint_every: int,
    vectorized: bool,
    node_shards: int = 1,
    round_hook: Callable | None,
    progress: Callable[[int, int], None] | None = None,
) -> tuple[ExperimentResult, bool]:
    """Run a wired sync engine through the checkpointed cell protocol:
    restore any mid-run checkpoint, run with periodic checkpointing at
    evaluation rounds, write the artifact, drop the checkpoint. With
    ``node_shards > 1`` a :class:`~repro.simulation.node_shard.
    NodeShardPool` fans the local-training stage out for the duration
    of the run; the engine (and its state backing, mmap or not) is
    always released on the way out, success or crash."""
    ckpt = checkpoint_path(results_dir, cell)
    start_round, history = 0, None
    resumed = ckpt.is_file()
    if resumed:
        start_round, history = load_run_checkpoint(engine, algo, ckpt)

    last_ckpt = {"round": start_round}

    def hook(eng, t, hist, last_eval):
        if (
            checkpoint_every > 0
            and t == last_eval  # evaluation rounds resume exactly
            and t < cell.total_rounds
            and t - last_ckpt["round"] >= checkpoint_every
        ):
            ckpt.parent.mkdir(parents=True, exist_ok=True)
            save_run_checkpoint(eng, algo, hist, t, ckpt)
            last_ckpt["round"] = t
        if round_hook is not None:
            round_hook(eng, t, hist, last_eval)
        if progress is not None:
            progress(t, cell.total_rounds)

    sharder = None
    try:
        if node_shards > 1:
            from ..simulation.node_shard import NodeShardPool

            sharder = NodeShardPool(engine, node_shards)
            engine.set_node_sharder(sharder)
        history = engine.run(
            algo, start_round=start_round, history=history, round_hook=hook
        )
        assert engine.meter is not None
        result = ExperimentResult(history=history, meter=engine.meter,
                                  trace=trace)
        write_cell_artifact(results_dir, cell, result, vectorized=vectorized)
        ckpt.unlink(missing_ok=True)
    finally:
        if sharder is not None:
            engine.set_node_sharder(None)
            sharder.close()
        engine.close()
    return result, resumed


def _execute_async_cell(
    engine,
    policy,
    cell: PlanCell,
    results_dir: str | os.PathLike,
    trace,
    *,
    eval_every_rounds: int,
    checkpoint_every: int,
    vectorized: bool = False,
    round_hook: Callable | None,
    progress: Callable[[int, int], None] | None = None,
) -> tuple[AsyncExperimentResult, bool]:
    """The ``kind="async"`` twin of :func:`_execute_sync_cell`. Any
    event boundary resumes exactly, so checkpoints need no alignment
    with evaluation events; under ``vectorized=True`` the hook only
    fires at evaluation boundaries, so checkpoints land on those (the
    sync engine's cadence) while resume stays boundary-free."""
    n = engine.n_nodes
    total_events = n * cell.total_rounds
    ckpt = checkpoint_path(results_dir, cell)
    start_event, history = 0, None
    resumed = ckpt.is_file()
    if resumed:
        start_event, history = load_async_run_checkpoint(engine, policy, ckpt)

    ckpt_interval = checkpoint_every * n  # round-equivalents → events
    last_ckpt = {"event": start_event}

    def hook(eng, event, hist):
        if (
            checkpoint_every > 0
            and event < total_events
            and event - last_ckpt["event"] >= ckpt_interval
        ):
            ckpt.parent.mkdir(parents=True, exist_ok=True)
            save_async_run_checkpoint(eng, policy, hist, event, ckpt)
            last_ckpt["event"] = event
        if round_hook is not None:
            round_hook(eng, event, hist, event)
        if progress is not None:
            progress(event, total_events)

    try:
        history = engine.run(
            policy,
            activations_per_node=cell.total_rounds,
            eval_every=async_eval_cadence(eval_every_rounds, n),
            start_event=start_event,
            history=history,
            event_hook=hook,
        )
        result = AsyncExperimentResult(
            history=history,
            train_energy_wh=engine.train_energy_wh,
            trace=trace,
        )
        write_async_cell_artifact(results_dir, cell, result,
                                  vectorized=vectorized)
        ckpt.unlink(missing_ok=True)
    finally:
        engine.close()
    return result, resumed


# Worker context for ``run_sweep(jobs=N)``. The pool uses the fork
# start method and workers only receive group *indices*, so presets,
# model factories, preset_lookup closures and round hooks never need to
# be picklable — the forked child inherits this module global.
_JOB_CTX: dict | None = None


def _run_cell_group(group_index: int) -> list[tuple[PlanCell, bool]]:
    """Execute one (preset, degree, seed) group of cells in a pool
    worker; returns ``(cell, resumed_from_checkpoint)`` pairs."""
    ctx = _JOB_CTX
    assert ctx is not None, "job worker forked without context"
    out: list[tuple[PlanCell, bool]] = []
    prepared = None
    for cell in ctx["groups"][group_index]:
        preset = ctx["preset_lookup"](cell.preset)
        if prepared is None and not cell.scenario:
            # one shared preparation per group (scenario cells prepare
            # inside compile_run — their data axis may differ)
            prepared = prepare(preset, cell.degree, seed=cell.seed)
        _, resumed = run_cell(
            preset,
            cell,
            ctx["results_dir"],
            prepared=prepared,
            checkpoint_every=ctx["checkpoint_every"],
            vectorized=ctx["vectorized"],
            state_backend=ctx["state_backend"],
            round_hook=ctx["round_hook"],
            scenario_lookup=ctx["scenario_lookup"],
        )
        out.append((cell, resumed))
    return out


def run_sweep(
    cells: tuple[PlanCell, ...],
    results_dir: str | os.PathLike,
    *,
    shard: tuple[int, int] = (1, 1),
    checkpoint_every: int = 0,
    vectorized: bool = False,
    node_shards: int = 1,
    state_backend: str = "memory",
    jobs: int | str = 1,
    pool: str = "persistent",
    preset_lookup: Callable[[str], ExperimentPreset] = get_preset,
    log: Callable[[str], None] | None = None,
    round_hook: Callable | None = None,
    scenario_lookup: Callable | None = None,
) -> SweepRunStats:
    """Execute shard ``I/N`` of a plan, artifact-by-artifact.

    Cells whose raw artifact already exists are skipped, so re-running
    after a crash (or over a directory another shard already filled)
    never redoes finished work. Preparation (data synthesis, partition,
    topology) is cached across consecutive cells sharing a (preset,
    degree, seed) coordinate; the shard's cells are regrouped by that
    coordinate before execution so the cache also hits under
    round-robin sharding (execution order within a shard is free —
    artifacts are per-cell and deterministic).

    ``jobs > 1`` fans the shard's pending cells out to a process pool
    selected by ``pool``:

    * ``"persistent"`` (default) — long-lived fork workers pulling
      individual cells off a work queue, with each distinct dataset
      prepared once in the parent and published to the workers via
      shared memory (see :mod:`repro.experiments.pool`). A crashed
      worker fails the sweep fast with its original traceback.
    * ``"fork"`` — the legacy per-(preset, degree, seed) group
      ``multiprocessing.Pool`` backend, kept as a fallback and as the
      conformance reference for the pool's correctness tests.

    Cells are independent and every artifact is deterministic, so
    either backend's artifact directory is byte-identical to a
    ``jobs=1`` run — only wall-clock and completion order change.
    Composes with sharding, skip-on-existing-artifact and mid-cell
    checkpointing unchanged (each cell owns its private checkpoint
    file). ``round_hook`` runs inside the worker processes when
    ``jobs > 1``. Both backends require the ``fork`` start method
    (Linux; presets and hooks need not be picklable) — elsewhere, run
    ``jobs=1`` per shard and split work with ``shard`` instead.

    ``jobs="auto"`` resolves the worker count via
    :func:`resolve_auto_jobs` — the scheduler affinity mask when the
    platform has one (it respects cgroup cpusets, where
    ``os.cpu_count()`` over-reports), else ``os.cpu_count()`` — falling
    back to a serial run on a single-CPU box (or when the fork start
    method is unavailable); the resolved value and its source are
    recorded in ``SweepRunStats.jobs_resolved`` / ``.jobs_source``.

    ``node_shards > 1`` parallelizes *within* each synchronous cell
    instead of across cells (fleet-scale presets have few, huge cells);
    it requires ``jobs=1`` — the two pool layers do not nest.
    ``state_backend`` selects the state-matrix backing for every cell
    (see :mod:`repro.simulation.state_store`); neither knob changes a
    byte of any artifact.
    """
    if node_shards < 1:
        raise ValueError("node_shards must be >= 1")
    jobs_source = "explicit"
    if jobs == "auto":
        jobs, jobs_source = resolve_auto_jobs()
        if jobs > 1 and "fork" not in mp.get_all_start_methods():
            jobs = 1
    elif not isinstance(jobs, int):
        raise ValueError(f'jobs must be a positive int or "auto", got {jobs!r}')
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if pool not in ("persistent", "fork"):
        raise ValueError(
            f'pool must be "persistent" or "fork", got {pool!r}'
        )
    if jobs > 1 and "fork" not in mp.get_all_start_methods():
        raise ValueError(
            "jobs > 1 requires the fork start method (unavailable on "
            "this platform); use jobs=1 and split work across machines "
            "with shard=I/N instead"
        )
    if node_shards > 1 and jobs > 1:
        raise ValueError(
            "node_shards > 1 requires jobs=1: node sharding parallelizes "
            "within cells and does not nest inside the cell-level pool"
        )
    index, count = shard
    selected = sorted(
        shard_cells(cells, index, count),
        key=lambda c: (c.preset, c.degree, c.seed),
    )
    stats = SweepRunStats(jobs_resolved=jobs, jobs_source=jobs_source)
    say = log if log is not None else (lambda msg: None)
    if jobs > 1:
        backend = (
            _run_sweep_persistent if pool == "persistent" else _run_sweep_jobs
        )
        return backend(
            selected, results_dir, stats, say,
            checkpoint_every=checkpoint_every, vectorized=vectorized,
            state_backend=state_backend, jobs=jobs,
            preset_lookup=preset_lookup, round_hook=round_hook,
            scenario_lookup=scenario_lookup,
        )
    prep_key, prep_val = None, None
    for pos, cell in enumerate(selected, 1):
        if artifact_path(results_dir, cell).is_file():
            stats.skipped.append(cell)
            say(f"[{pos}/{len(selected)}] skip {cell.cell_id} (artifact exists)")
            continue
        preset = preset_lookup(cell.preset)
        if cell.scenario:
            # scenario cells prepare inside compile_run (their data
            # axis may override the preset's partition)
            prep = None
        else:
            key = (cell.preset, cell.degree, cell.seed)
            if key != prep_key:
                prep_key, prep_val = key, prepare(preset, cell.degree,
                                                  seed=cell.seed)
            prep = prep_val
        say(f"[{pos}/{len(selected)}] run  {cell.cell_id}")
        _, resumed = run_cell(
            preset,
            cell,
            results_dir,
            prepared=prep,
            checkpoint_every=checkpoint_every,
            vectorized=vectorized,
            node_shards=node_shards,
            state_backend=state_backend,
            round_hook=round_hook,
            scenario_lookup=scenario_lookup,
        )
        stats.ran.append(cell)
        if resumed:
            stats.resumed.append(cell)
            say(f"    resumed {cell.cell_id} from mid-cell checkpoint")
    return stats


def _run_sweep_jobs(
    selected: list[PlanCell],
    results_dir: str | os.PathLike,
    stats: SweepRunStats,
    say: Callable[[str], None],
    *,
    checkpoint_every: int,
    vectorized: bool,
    state_backend: str = "memory",
    jobs: int,
    preset_lookup: Callable[[str], ExperimentPreset],
    round_hook: Callable | None,
    scenario_lookup: Callable | None,
) -> SweepRunStats:
    """The ``jobs > 1`` execution path: pending cells grouped by
    preparation coordinate, one pool task per group."""
    global _JOB_CTX
    pending: list[PlanCell] = []
    for cell in selected:
        if artifact_path(results_dir, cell).is_file():
            stats.skipped.append(cell)
            say(f"skip {cell.cell_id} (artifact exists)")
        else:
            pending.append(cell)
    if not pending:
        return stats
    groups: dict[tuple, list[PlanCell]] = {}
    for cell in pending:
        groups.setdefault(
            (cell.preset, cell.degree, cell.seed, cell.scenario), []
        ).append(cell)
    group_list = [groups[key] for key in sorted(groups)]
    if _JOB_CTX is not None:
        raise RuntimeError("run_sweep(jobs>1) does not nest")
    _JOB_CTX = {
        "groups": group_list,
        "results_dir": results_dir,
        "checkpoint_every": checkpoint_every,
        "vectorized": vectorized,
        "state_backend": state_backend,
        "preset_lookup": preset_lookup,
        "round_hook": round_hook,
        "scenario_lookup": scenario_lookup,
    }
    done = 0
    try:
        ctx = mp.get_context("fork")
        with ctx.Pool(processes=min(jobs, len(group_list))) as pool:
            for results in pool.imap_unordered(_run_cell_group,
                                               range(len(group_list))):
                for cell, resumed in results:
                    done += 1
                    say(f"[{done}/{len(pending)}] ran  {cell.cell_id}")
                    stats.ran.append(cell)
                    if resumed:
                        stats.resumed.append(cell)
                        say(f"    resumed {cell.cell_id} from mid-cell "
                            f"checkpoint")
    finally:
        _JOB_CTX = None
    return stats


def cell_data_coords(
    cell: PlanCell,
    *,
    preset_lookup: Callable[[str], ExperimentPreset],
    scenario_lookup: Callable | None = None,
) -> tuple[tuple, ExperimentPreset, str | None, float | None]:
    """``(data key, base preset, partition override, α)`` for one cell.

    The shared-memory publication coordinate of the persistent pool:
    two cells with the same key bind the exact same published dataset
    segment. Scenario cells resolve their base preset and data-axis
    override through :func:`~repro.scenarios.compile.scenario_base`;
    plain cells key on (preset, seed) alone. The serve daemon uses the
    same helper, which is what keeps a served cell's prepared data —
    and therefore its artifact bytes — identical to its batch twin.
    """
    from ..scenarios.compile import scenario_base
    from ..scenarios.registry import get_scenario

    lookup = scenario_lookup if scenario_lookup is not None else get_scenario
    if cell.scenario:
        spec = lookup(cell.scenario)
        base, _ = scenario_base(spec, preset_lookup(cell.preset))
        key = (cell.preset, cell.seed, spec.data.partition, spec.data.alpha)
        return key, base, spec.data.partition, spec.data.alpha
    return (cell.preset, cell.seed, None, None), preset_lookup(cell.preset), None, None


def _run_sweep_persistent(
    selected: list[PlanCell],
    results_dir: str | os.PathLike,
    stats: SweepRunStats,
    say: Callable[[str], None],
    *,
    checkpoint_every: int,
    vectorized: bool,
    state_backend: str = "memory",
    jobs: int,
    preset_lookup: Callable[[str], ExperimentPreset],
    round_hook: Callable | None,
    scenario_lookup: Callable | None,
) -> SweepRunStats:
    """The default ``jobs > 1`` path: every distinct dataset prepared
    once in the parent and published to shared memory, pending cells
    streamed one-by-one through persistent fork workers.

    The data key is (preset, seed, partition-override, α) — degree-free,
    because topology/mixing/trace are cheap and re-derived per cell in
    the workers (:func:`~repro.experiments.runner.prepared_from_data`).
    Scenario cells resolve their override/α from the spec's data axis
    and their base preset via
    :func:`~repro.scenarios.compile.scenario_base`, so a scenario
    without a data override shares its segment with the plain cells of
    the same (preset, seed).
    """
    from ..scenarios.compile import scenario_base
    from ..scenarios.registry import get_scenario
    from .pool import PersistentPool, SharedDatasetCache, bind_data

    lookup = scenario_lookup if scenario_lookup is not None else get_scenario
    pending: list[PlanCell] = []
    for cell in selected:
        if artifact_path(results_dir, cell).is_file():
            stats.skipped.append(cell)
            say(f"skip {cell.cell_id} (artifact exists)")
        else:
            pending.append(cell)
    if not pending:
        return stats

    def data_coords(cell: PlanCell) -> tuple[tuple, ExperimentPreset, str | None, float | None]:
        return cell_data_coords(
            cell, preset_lookup=preset_lookup, scenario_lookup=lookup
        )

    def run_one(cell, meta):
        # runs inside a forked worker: rebind the shared dataset, derive
        # the cell's topology locally, then ride the normal cell path
        preset = preset_lookup(cell.preset)
        if cell.scenario:
            base, degree = scenario_base(lookup(cell.scenario), preset)
        else:
            base, degree = preset, cell.degree
        prepared = prepared_from_data(bind_data(meta, base), degree)
        _, resumed = run_cell(
            preset,
            cell,
            results_dir,
            prepared=prepared,
            checkpoint_every=checkpoint_every,
            vectorized=vectorized,
            state_backend=state_backend,
            round_hook=round_hook,
            scenario_lookup=scenario_lookup,
        )
        return resumed

    by_id = {cell.cell_id: cell for cell in pending}
    done = 0
    with SharedDatasetCache() as shared:
        tasks = []
        for cell in pending:
            key, base, override, alpha = data_coords(cell)
            meta = shared.get(key)
            if meta is None:
                say(f"prep {cell.preset} seed={cell.seed}"
                    + (f" data={override}" if override else ""))
                meta = shared.publish(
                    key,
                    prepare_data(
                        base,
                        seed=cell.seed,
                        partition_override=override,
                        dirichlet_alpha=alpha,
                    ),
                )
                stats.prepped.append(key)
            tasks.append((cell, meta))
        with PersistentPool(min(jobs, len(pending)), run_one) as workers:
            for cell_id, resumed in workers.run(tasks):
                cell = by_id[cell_id]
                done += 1
                say(f"[{done}/{len(pending)}] ran  {cell.cell_id}")
                stats.ran.append(cell)
                if resumed:
                    stats.resumed.append(cell)
                    say(f"    resumed {cell.cell_id} from mid-cell "
                        f"checkpoint")
    return stats


def sweep_result_from_artifacts(
    results_dir: str | os.PathLike,
    preset_name: str,
    degree: int,
    total_rounds: int | None = None,
) -> SweepResult:
    """Rebuild a :class:`SweepResult` (the mean±std comparison table)
    from raw artifacts instead of recomputation. With ``total_rounds=
    None`` the rounds value is discovered from the artifacts; a mix of
    rounds values is ambiguous (the same seed would enter one mean at
    two training lengths) and fails loudly."""
    from .artifacts import list_cell_artifacts

    cells: dict[str, SweepCell] = {}
    matching = [
        a
        for a in list_cell_artifacts(results_dir)
        if a["cell"]["preset"] == preset_name
        and int(a["cell"]["degree"]) == degree
        # scenario cells (churn/failure compositions) never enter the
        # plain preset comparison table
        and not a["cell"].get("scenario")
    ]
    rounds_present = sorted({int(a["cell"]["total_rounds"]) for a in matching})
    if total_rounds is None and len(rounds_present) > 1:
        raise ValueError(
            f"artifacts for preset {preset_name!r} degree {degree} mix "
            f"total_rounds {rounds_present}; pass an explicit total_rounds"
        )
    artifacts = [
        a
        for a in matching
        if total_rounds is None
        or int(a["cell"]["total_rounds"]) == total_rounds
    ]
    by_algorithm: dict[str, list[dict]] = {}
    for artifact in artifacts:
        by_algorithm.setdefault(artifact["cell"]["algorithm"], []).append(artifact)
    for name in sorted(by_algorithm):
        group = sorted(by_algorithm[name], key=lambda a: int(a["cell"]["seed"]))
        cells[name] = SweepCell(
            algorithm=name,
            accuracies=tuple(a["results"]["final_accuracy"] for a in group),
            train_energies_wh=tuple(a["results"]["total_train_wh"] for a in group),
        )
    if not cells:
        raise FileNotFoundError(
            f"no artifacts for preset {preset_name!r} degree {degree} "
            f"under {results_dir}"
        )
    return SweepResult(degree=degree, cells=cells)
