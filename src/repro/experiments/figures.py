"""Per-figure reproduction entry points.

Each ``figureN`` function runs the experiment behind the paper's figure
N and returns the underlying data (plus an ASCII rendering via
``render()``), at whatever preset scale the caller passes.

``figureN_from_artifacts`` variants regenerate the same output from
sweep artifacts (``results/raw/*.json``) instead of recomputation —
run the cells once with ``repro sweep``, then re-render for free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.stats import class_distribution_matrix
from ..data.partition import partition_datasets
from ..simulation.metrics import RunHistory
from .presets import ExperimentPreset
from .reporting import render_series, render_table
from .runner import ExperimentResult, prepare, run_algorithm

__all__ = [
    "Figure1Result",
    "figure1",
    "figure1_from_artifacts",
    "Figure4Result",
    "figure4",
    "Figure5Result",
    "figure5",
    "Figure6Result",
    "figure6",
    "Figure7Result",
    "figure7",
]


# --------------------------------------------------------------------------
# Figure 1: D-PSGD vs D-PSGD + all-reduce
# --------------------------------------------------------------------------


@dataclass
class Figure1Result:
    """Accuracy-over-rounds comparison: plain D-PSGD (mean across nodes)
    vs hypothetical all-reduce-every-round (consensus model)."""

    dpsgd: RunHistory
    allreduce: RunHistory

    def improvement(self) -> float:
        """Final-round accuracy gain of all-reduce over D-PSGD (the ~10 %
        the paper reports)."""
        return self.allreduce.final_accuracy() - self.dpsgd.final_accuracy()

    def render(self) -> str:
        rounds = self.dpsgd.rounds
        ar_acc = np.interp(rounds, self.allreduce.rounds, self.allreduce.mean_accuracy)
        return render_series(
            rounds,
            {"D-PSGD": self.dpsgd.mean_accuracy * 100, "All-reduce": ar_acc * 100},
            x_label="round",
        )


def figure1(
    preset: ExperimentPreset, degree: int | None = None, seed: int = 0
) -> Figure1Result:
    """Reproduce Fig. 1 on the preset's first (sparsest) degree."""
    deg = degree if degree is not None else preset.degrees[0]
    prepared = prepare(preset, deg, seed=seed)
    dpsgd = run_algorithm(prepared, "d-psgd")
    allreduce = run_algorithm(prepared, "d-psgd-allreduce")
    return Figure1Result(dpsgd=dpsgd.history, allreduce=allreduce.history)


def figure1_from_artifacts(
    results_dir: str,
    preset: ExperimentPreset,
    degree: int | None = None,
    seed: int = 0,
) -> Figure1Result:
    """Rebuild Fig. 1 from the ``d-psgd`` and ``d-psgd-allreduce``
    sweep artifacts (no recomputation; raises with the sweep command
    to run if a cell is missing)."""
    from .artifacts import load_cell_result, resolve_cell

    deg = degree if degree is not None else preset.degrees[0]
    histories = {}
    for algorithm in ("d-psgd", "d-psgd-allreduce"):
        cell = resolve_cell(results_dir, preset.name, algorithm, deg, seed)
        histories[algorithm] = load_cell_result(results_dir, cell).history
    return Figure1Result(
        dpsgd=histories["d-psgd"], allreduce=histories["d-psgd-allreduce"]
    )


# --------------------------------------------------------------------------
# Figure 4: train/sync accuracy oscillation
# --------------------------------------------------------------------------


@dataclass
class Figure4Result:
    """Fine-grained accuracy trace distinguishing train and sync rounds."""

    history: RunHistory

    def oscillation_contrast(self) -> float:
        """Mean accuracy after sync rounds minus mean accuracy after
        training rounds, over the evaluated window (positive = the
        paper's sawtooth: sync rounds raise test accuracy)."""
        sync_accs = [
            r.mean_accuracy for r in self.history.records if not r.is_training_round
        ]
        train_accs = [
            r.mean_accuracy for r in self.history.records if r.is_training_round
        ]
        if not sync_accs or not train_accs:
            raise ValueError("window contains only one round type")
        return float(np.mean(sync_accs) - np.mean(train_accs))

    def std_contrast(self) -> float:
        """Inter-node accuracy std after train rounds minus after sync
        rounds (positive = sync shrinks disagreement, the paper's
        shaded-band behaviour)."""
        sync = [r.std_accuracy for r in self.history.records if not r.is_training_round]
        train = [r.std_accuracy for r in self.history.records if r.is_training_round]
        return float(np.mean(train) - np.mean(sync))

    def render(self) -> str:
        rows = [
            [r.round, "train" if r.is_training_round else "sync",
             r.mean_accuracy * 100, r.std_accuracy * 100]
            for r in self.history.records
        ]
        return render_table(["round", "phase", "accuracy %", "std %"], rows,
                            title="SkipTrain per-round test accuracy")


class _EvalEveryRound:
    """Wrapper making every round an evaluation point (Fig. 4 evaluates
    every 2 rounds to expose the oscillation)."""

    def __init__(self, inner):
        self.inner = inner
        self.n_nodes = inner.n_nodes
        self.name = inner.name
        self.use_allreduce = inner.use_allreduce

    def train_mask(self, t):
        return self.inner.train_mask(t)

    def is_eval_point(self, t):
        return True

    def reset(self):
        self.inner.reset()


def figure4(
    preset: ExperimentPreset,
    degree: int | None = None,
    seed: int = 0,
    window: int | None = None,
) -> Figure4Result:
    """Reproduce Fig. 4: run SkipTrain, evaluating every round over the
    final ``window`` rounds (default: the last 4 schedule periods)."""
    from ..core.skiptrain import SkipTrain

    deg = degree if degree is not None else preset.degrees[0]
    prepared = prepare(preset, deg, seed=seed)
    schedule = preset.schedule_for_degree(deg)
    if window is None:
        window = 4 * schedule.period
    algo = _EvalEveryRound(SkipTrain(preset.n_nodes, schedule))
    result = run_algorithm(prepared, algo, eval_every=1)
    start = preset.total_rounds - window
    trimmed = RunHistory(
        algorithm=result.history.algorithm,
        records=[r for r in result.history.records if r.round > start],
    )
    return Figure4Result(history=trimmed)


# --------------------------------------------------------------------------
# Figure 5 (with Table 3): SkipTrain vs D-PSGD across degrees
# --------------------------------------------------------------------------


@dataclass
class Figure5Result:
    """Accuracy-vs-round and accuracy-vs-energy curves per degree."""

    degrees: tuple[int, ...]
    dpsgd: dict[int, ExperimentResult]
    skiptrain: dict[int, ExperimentResult]

    def render(self) -> str:
        blocks = []
        for deg in self.degrees:
            d, s = self.dpsgd[deg], self.skiptrain[deg]
            rows = [
                ["D-PSGD", d.meter.total_train_wh, d.history.final_accuracy() * 100],
                ["SkipTrain", s.meter.total_train_wh, s.history.final_accuracy() * 100],
            ]
            blocks.append(
                render_table(
                    ["algorithm", "train energy Wh", "final accuracy %"],
                    rows,
                    title=f"{deg}-regular",
                )
            )
        return "\n\n".join(blocks)


def figure5(preset: ExperimentPreset, seed: int = 0) -> Figure5Result:
    """Run SkipTrain and D-PSGD on every degree of the preset."""
    dpsgd: dict[int, ExperimentResult] = {}
    skiptrain: dict[int, ExperimentResult] = {}
    for deg in preset.degrees:
        prepared = prepare(preset, deg, seed=seed)
        dpsgd[deg] = run_algorithm(prepared, "d-psgd")
        skiptrain[deg] = run_algorithm(prepared, "skiptrain")
    return Figure5Result(degrees=preset.degrees, dpsgd=dpsgd, skiptrain=skiptrain)


# --------------------------------------------------------------------------
# Figure 6 (with Table 4): the energy-constrained setting
# --------------------------------------------------------------------------


@dataclass
class Figure6Result:
    """Constrained-setting comparison per degree: SkipTrain-constrained
    vs Greedy vs (budget-matched) D-PSGD."""

    degrees: tuple[int, ...]
    constrained: dict[int, ExperimentResult]
    greedy: dict[int, ExperimentResult]
    dpsgd: dict[int, ExperimentResult]

    def budget_wh(self, degree: int) -> float:
        """Energy actually spent by SkipTrain-constrained (training +
        communication) — the budget at which all three algorithms are
        compared (Table 4 semantics). Greedy spends essentially the same
        (same per-node budgets); D-PSGD is read off its accuracy-vs-
        energy curve at this budget."""
        meters = (self.constrained[degree].meter, self.greedy[degree].meter)
        return max(m.total_wh for m in meters)

    def accuracy_at_budget(self, degree: int) -> dict[str, float]:
        budget = self.budget_wh(degree)
        out = {}
        for name, res in (
            ("SkipTrain-constrained", self.constrained[degree]),
            ("Greedy", self.greedy[degree]),
            ("D-PSGD", self.dpsgd[degree]),
        ):
            # compare each algorithm at (approximately) the same spent
            # energy; algorithms that never reach the budget are read at
            # their final point.
            try:
                out[name] = res.history.accuracy_at_energy(budget)
            except ValueError:
                out[name] = res.history.records[0].mean_accuracy
        return out

    def render(self) -> str:
        blocks = []
        for deg in self.degrees:
            accs = self.accuracy_at_budget(deg)
            rows = [[k, self.budget_wh(deg), v * 100] for k, v in accs.items()]
            blocks.append(
                render_table(
                    ["algorithm", "energy budget Wh", "accuracy %"],
                    rows,
                    title=f"{deg}-regular (constrained)",
                )
            )
        return "\n\n".join(blocks)


def figure6(preset: ExperimentPreset, seed: int = 0) -> Figure6Result:
    """Run the three constrained-setting algorithms on every degree."""
    constrained: dict[int, ExperimentResult] = {}
    greedy: dict[int, ExperimentResult] = {}
    dpsgd: dict[int, ExperimentResult] = {}
    # D-PSGD hits the budget early in its run, so it needs a finer
    # evaluation cadence for the accuracy-at-budget readout.
    fine_eval = max(1, preset.eval_every // 4)
    for deg in preset.degrees:
        prepared = prepare(preset, deg, seed=seed)
        constrained[deg] = run_algorithm(prepared, "skiptrain-constrained")
        greedy[deg] = run_algorithm(prepared, "greedy")
        dpsgd[deg] = run_algorithm(prepared, "d-psgd", eval_every=fine_eval)
    return Figure6Result(
        degrees=preset.degrees, constrained=constrained, greedy=greedy, dpsgd=dpsgd
    )


# --------------------------------------------------------------------------
# Figure 7: class distributions
# --------------------------------------------------------------------------


@dataclass
class Figure7Result:
    """Node × class count matrices for the two partition schemes."""

    shard_matrix: np.ndarray
    writer_matrix: np.ndarray

    def render(self, max_nodes: int = 10) -> str:
        def block(mat: np.ndarray, title: str) -> str:
            sub = mat[:max_nodes]
            rows = [[i] + list(map(int, row)) for i, row in enumerate(sub)]
            headers = ["node"] + [f"c{c}" for c in range(sub.shape[1])]
            return render_table(headers, rows, title=title)

        return (
            block(self.shard_matrix, "2-shard partition (CIFAR-10-like)")
            + "\n\n"
            + block(self.writer_matrix[:, : min(16, self.writer_matrix.shape[1])],
                    "writer partition (FEMNIST-like, first 16 classes)")
        )


def figure7(
    cifar_preset: ExperimentPreset,
    femnist_preset: ExperimentPreset,
    seed: int = 0,
) -> Figure7Result:
    """Build both partitions and return their class-count matrices."""
    shard_prep = prepare(cifar_preset, cifar_preset.degrees[0], seed=seed)
    shard_parts = partition_datasets(shard_prep.train, shard_prep.partition)
    writer_prep = prepare(femnist_preset, femnist_preset.degrees[0], seed=seed)
    writer_parts = partition_datasets(writer_prep.train, writer_prep.partition)
    return Figure7Result(
        shard_matrix=class_distribution_matrix(shard_parts),
        writer_matrix=class_distribution_matrix(writer_parts),
    )
