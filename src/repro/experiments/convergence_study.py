"""Consensus-distance study: the mechanism behind §3.1.

The paper's argument is mechanistic: training rounds *grow* inter-node
disagreement on non-IID data, synchronization rounds *shrink* it, and
lower disagreement at evaluation time is where SkipTrain's accuracy
advantage comes from. This experiment records the consensus-distance
trajectory of each algorithm on identical data and reports the
summary statistics that make the mechanism falsifiable.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..analysis.diagnostics import accuracy_auc, empirical_contraction_rate
from ..simulation.metrics import RunHistory
from .presets import ExperimentPreset
from .reporting import render_table
from .runner import prepare, run_algorithm

__all__ = ["ConvergenceStudyResult", "convergence_study"]

ALGORITHMS = ("d-psgd", "skiptrain", "d-psgd-allreduce")


@dataclass
class ConvergenceStudyResult:
    """Per-algorithm trajectories and summary statistics."""

    histories: dict[str, RunHistory]

    def final_consensus(self, name: str) -> float:
        return float(self.histories[name].consensus[-1])

    def contraction(self, name: str) -> float:
        return empirical_contraction_rate(self.histories[name].consensus)

    def auc(self, name: str) -> float:
        return accuracy_auc(self.histories[name])

    def render(self) -> str:
        rows = []
        for name, history in self.histories.items():
            rows.append([
                name,
                history.final_accuracy() * 100,
                self.final_consensus(name),
                self.auc(name),
            ])
        return render_table(
            ["algorithm", "final accuracy %", "final consensus dist",
             "accuracy AUC"],
            rows,
            title="Convergence / consensus study",
        )


def convergence_study(
    preset: ExperimentPreset, degree: int | None = None, seed: int = 0
) -> ConvergenceStudyResult:
    """Run the three reference algorithms on one prepared cell."""
    deg = degree if degree is not None else preset.degrees[0]
    prepared = prepare(preset, deg, seed=seed)
    histories = {}
    for name in ALGORITHMS:
        histories[name] = run_algorithm(prepared, name).history
    return ConvergenceStudyResult(histories=histories)
