"""§5.1 bias study: does energy-aware skipping favor high-budget devices?

The paper flags (but does not measure) that SkipTrain-constrained's
probabilistic participation biases the consensus model toward
high-energy-capacity devices. This experiment quantifies the effect:

* participation inequality (Gini over per-node training rounds),
* the consensus model's accuracy on each device group's *local* test
  distribution (high-budget groups should score higher if the bias is
  real),
* the spread between best- and worst-served device groups.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.partition import partition_datasets
from ..data.stats import class_distribution_matrix
from ..energy.accounting import EnergyMeter
from ..simulation.builder import build_nodes
from ..simulation.engine import EngineConfig, SimulationEngine
from ..simulation.fairness import (
    DeviceGroupReport,
    device_group_report,
    local_test_sets,
    participation_gini,
)
from ..simulation.rng import RngFactory
from .presets import ExperimentPreset
from .reporting import render_table
from .runner import PreparedExperiment, _make_algorithm, prepare

__all__ = ["FairnessStudyResult", "fairness_study"]


@dataclass
class FairnessStudyResult:
    """Participation inequality and per-device-group accuracy for the
    unconstrained vs constrained algorithms."""

    gini: dict[str, float]
    reports: dict[str, DeviceGroupReport]

    def render(self) -> str:
        blocks = []
        rows = [[name, g] for name, g in self.gini.items()]
        blocks.append(render_table(
            ["algorithm", "participation Gini"], rows,
            title="Participation inequality (0 = equal)",
        ))
        for name, report in self.reports.items():
            rows = [
                [dev, rounds, acc * 100]
                for dev, rounds, acc in zip(
                    report.device_names, report.train_rounds,
                    report.local_accuracy,
                )
            ]
            rows.append(["(spread)", "", report.accuracy_spread() * 100])
            blocks.append(render_table(
                ["device", "mean train rounds", "local accuracy %"], rows,
                title=f"{name}: consensus accuracy per device group",
            ))
        return "\n\n".join(blocks)


def _run_with_state(
    prepared: PreparedExperiment, algorithm_name: str, seed: int
) -> tuple[SimulationEngine, EnergyMeter]:
    """Run an algorithm and return the engine (with final state) and
    its meter — the fairness metrics need the raw state matrix, which
    the high-level runner does not expose."""
    preset = prepared.preset
    rngs = RngFactory(seed)
    cfg = EngineConfig(
        local_steps=preset.local_steps,
        learning_rate=preset.learning_rate,
        total_rounds=preset.total_rounds,
        eval_every=preset.total_rounds,
        eval_node_sample=1,
    )
    model = preset.model_factory(rngs.stream("model"))
    nodes = build_nodes(prepared.train, prepared.partition,
                        preset.batch_size, rngs)
    meter = EnergyMeter(prepared.trace)
    engine = SimulationEngine(model, nodes, prepared.mixing, cfg,
                              prepared.test, meter=meter,
                              eval_rng=rngs.stream("eval"))
    algo = _make_algorithm(algorithm_name, prepared, None,
                           preset.total_rounds, rngs)
    engine.run(algo)
    return engine, meter


def fairness_study(
    preset: ExperimentPreset, degree: int | None = None, seed: int = 0
) -> FairnessStudyResult:
    """Run SkipTrain (unconstrained) and SkipTrain-constrained on the
    same cell and compare participation equality and per-device-group
    local accuracy."""
    deg = degree if degree is not None else preset.degrees[0]
    prepared = prepare(preset, deg, seed=seed)
    rngs = RngFactory(seed)

    class_matrix = class_distribution_matrix(
        partition_datasets(prepared.train, prepared.partition)
    )
    locals_ = local_test_sets(
        prepared.test, class_matrix, rngs.stream("fairness"),
        samples_per_node=min(200, len(prepared.test)),
    )

    gini: dict[str, float] = {}
    reports: dict[str, DeviceGroupReport] = {}
    for name in ("skiptrain", "skiptrain-constrained"):
        engine, meter = _run_with_state(prepared, name, seed)
        gini[name] = participation_gini(meter.train_rounds)
        reports[name] = device_group_report(
            engine.model, engine.state, prepared.trace.devices,
            meter.train_rounds, locals_,
        )
    return FairnessStudyResult(gini=gini, reports=reports)
