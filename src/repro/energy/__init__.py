"""``repro.energy`` — device profiles, energy traces and accounting."""

from .accounting import EnergyMeter
from .battery import PAPER_BATTERY_FRACTION, Table2Row, budget_rounds, table2_rows
from .devices import (
    ONEPLUS_NORD_2_5G,
    PAPER_DEVICES,
    SAMSUNG_GALAXY_S22_ULTRA,
    XIAOMI_12_PRO,
    XIAOMI_POCO_X3,
    DeviceProfile,
    device_by_name,
)
from .traces import (
    CIFAR10_WORKLOAD,
    FEDSCALE_TRAIN_MULTIPLIER,
    FEMNIST_WORKLOAD,
    MOBILENET_V2_PARAMS,
    EnergyTrace,
    WorkloadSpec,
    assign_devices_round_robin,
    build_trace,
    communication_energy_wh,
    per_round_energy_mwh,
    per_round_energy_wh,
    round_duration_s,
)

__all__ = [
    "DeviceProfile",
    "device_by_name",
    "PAPER_DEVICES",
    "XIAOMI_12_PRO",
    "SAMSUNG_GALAXY_S22_ULTRA",
    "ONEPLUS_NORD_2_5G",
    "XIAOMI_POCO_X3",
    "WorkloadSpec",
    "CIFAR10_WORKLOAD",
    "FEMNIST_WORKLOAD",
    "MOBILENET_V2_PARAMS",
    "FEDSCALE_TRAIN_MULTIPLIER",
    "EnergyTrace",
    "build_trace",
    "assign_devices_round_robin",
    "round_duration_s",
    "per_round_energy_wh",
    "per_round_energy_mwh",
    "communication_energy_wh",
    "EnergyMeter",
    "budget_rounds",
    "table2_rows",
    "Table2Row",
    "PAPER_BATTERY_FRACTION",
]
