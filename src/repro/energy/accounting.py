"""Energy accounting (Eq. 2–3 of the paper).

The :class:`EnergyMeter` accumulates per-node, per-round training and
communication energy during a simulation; totals and time series feed
the accuracy-vs-energy plots (Fig. 5/6) and the energy columns of
Tables 3–4.
"""

from __future__ import annotations

import numpy as np

from .traces import EnergyTrace

__all__ = ["EnergyMeter"]


class EnergyMeter:
    """Accumulates energy spent by each node across rounds.

    One call to :meth:`record_round` per simulated round with boolean
    masks of who trained / who communicated. All arrays are indexed by
    node id.
    """

    def __init__(self, trace: EnergyTrace) -> None:
        self.trace = trace
        n = trace.n_nodes
        self.train_wh = np.zeros(n)
        self.comm_wh = np.zeros(n)
        self.train_rounds = np.zeros(n, dtype=np.int64)
        self._history_total: list[float] = []

    @property
    def n_nodes(self) -> int:
        return self.trace.n_nodes

    def record_round(
        self,
        trained: np.ndarray,
        communicated: np.ndarray | None = None,
        comm_scale: float = 1.0,
    ) -> None:
        """Record one round. ``trained``/``communicated`` are boolean
        masks of shape ``(n_nodes,)``; communication defaults to all
        nodes (every round shares and aggregates). ``comm_scale``
        rescales the round's communication energy — payload compression
        shrinks the wire cost proportionally."""
        trained = np.asarray(trained, dtype=bool)
        if trained.shape != (self.n_nodes,):
            raise ValueError(f"trained mask must have shape ({self.n_nodes},)")
        if communicated is None:
            communicated = np.ones(self.n_nodes, dtype=bool)
        else:
            communicated = np.asarray(communicated, dtype=bool)
            if communicated.shape != (self.n_nodes,):
                raise ValueError(
                    f"communicated mask must have shape ({self.n_nodes},)"
                )
        if comm_scale < 0:
            raise ValueError("comm_scale must be non-negative")
        self.train_wh += np.where(trained, self.trace.train_energy_wh, 0.0)
        self.comm_wh += comm_scale * np.where(
            communicated, self.trace.comm_energy_wh, 0.0
        )
        self.train_rounds += trained
        self._history_total.append(self.total_wh)

    @property
    def total_train_wh(self) -> float:
        """Total training energy across all nodes (Eq. 3)."""
        return float(self.train_wh.sum())

    @property
    def total_comm_wh(self) -> float:
        """Total communication energy across all nodes."""
        return float(self.comm_wh.sum())

    @property
    def total_wh(self) -> float:
        """Training + communication energy across all nodes."""
        return self.total_train_wh + self.total_comm_wh

    def cumulative_total_wh(self) -> np.ndarray:
        """Total (train+comm) energy after each recorded round — the
        x-axis of the accuracy-vs-energy plots."""
        return np.asarray(self._history_total)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Round-trippable snapshot of every accumulator, for
        checkpointing. The arrays are copies; mutating them does not
        affect the meter."""
        return {
            "train_wh": self.train_wh.copy(),
            "comm_wh": self.comm_wh.copy(),
            "train_rounds": self.train_rounds.copy(),
            "history_total": np.asarray(self._history_total, dtype=np.float64),
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore a snapshot produced by :meth:`state_dict` (in place).
        The node count must match; mismatches fail loudly."""
        for key in ("train_wh", "comm_wh", "train_rounds", "history_total"):
            if key not in state:
                raise ValueError(f"meter state lacks {key!r}")
        train_wh = np.asarray(state["train_wh"], dtype=np.float64)
        comm_wh = np.asarray(state["comm_wh"], dtype=np.float64)
        train_rounds = np.asarray(state["train_rounds"], dtype=np.int64)
        for name, arr in (("train_wh", train_wh), ("comm_wh", comm_wh),
                          ("train_rounds", train_rounds)):
            if arr.shape != (self.n_nodes,):
                raise ValueError(
                    f"meter state {name!r} has shape {arr.shape}, "
                    f"expected ({self.n_nodes},)"
                )
        self.train_wh[...] = train_wh
        self.comm_wh[...] = comm_wh
        self.train_rounds[...] = train_rounds
        self._history_total = [
            float(v) for v in np.asarray(state["history_total"], dtype=np.float64)
        ]

    def remaining_budget_rounds(self) -> np.ndarray:
        """τᵢ minus training rounds already spent, clipped at zero."""
        return np.maximum(self.trace.budget_rounds - self.train_rounds, 0)

    def budget_exhausted(self) -> np.ndarray:
        """Boolean mask of nodes whose training budget is spent."""
        return self.train_rounds >= self.trace.budget_rounds
