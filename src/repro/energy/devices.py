"""Smartphone device profiles.

The paper builds energy traces for four phones by combining the Burnout
benchmark (sustained training power), the AI benchmark (MobileNet-v2
inference latency) and battery capacities. Those upstream measurements
are not redistributable, so this module carries the *derived* per-device
constants calibrated such that the trace pipeline in
:mod:`repro.energy.traces` reproduces the paper's published Table 2
endpoints (average per-round energy in mWh and battery-limited round
counts). See DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DeviceProfile",
    "XIAOMI_12_PRO",
    "SAMSUNG_GALAXY_S22_ULTRA",
    "ONEPLUS_NORD_2_5G",
    "XIAOMI_POCO_X3",
    "PAPER_DEVICES",
    "device_by_name",
]


@dataclass(frozen=True)
class DeviceProfile:
    """Hardware constants of one smartphone model.

    Attributes
    ----------
    name:
        Marketing name, as in Table 2.
    training_power_w:
        Sustained SoC power draw during training, in watts (from the
        Burnout benchmark in the paper).
    mobilenet_inference_ms:
        Per-sample MobileNet-v2 inference latency in milliseconds (from
        the AI benchmark).
    battery_wh:
        Usable battery capacity in watt-hours.
    communication_power_w:
        Radio power during model exchange, in watts. Communication is
        ~200× cheaper than training in the paper's §1 estimate; this
        value feeds that comparison.
    """

    name: str
    training_power_w: float
    mobilenet_inference_ms: float
    battery_wh: float
    communication_power_w: float = 0.8

    def __post_init__(self) -> None:
        if self.training_power_w <= 0:
            raise ValueError("training_power_w must be positive")
        if self.mobilenet_inference_ms <= 0:
            raise ValueError("mobilenet_inference_ms must be positive")
        if self.battery_wh <= 0:
            raise ValueError("battery_wh must be positive")
        if self.communication_power_w < 0:
            raise ValueError("communication_power_w must be non-negative")


# Calibrated so that traces.per_round_energy_mwh reproduces Table 2:
# a shared MobileNet-v2 latency of 70.964 ms makes the CIFAR-10 round
# last exactly 3.6 s, which recovers the paper's per-round mWh column
# (numerically equal to the device wattage) and, with the battery
# capacities below, the paper's battery-limited round counts
# (272/324/681/272 for CIFAR at 10 %, 413/492/1034/413 for FEMNIST at
# 50 %) to the round.
_SHARED_INFERENCE_MS = 70.964

XIAOMI_12_PRO = DeviceProfile(
    name="Xiaomi 12 Pro",
    training_power_w=6.5,
    mobilenet_inference_ms=_SHARED_INFERENCE_MS,
    battery_wh=17.70,
)
SAMSUNG_GALAXY_S22_ULTRA = DeviceProfile(
    name="Samsung Galaxy S22 Ultra",
    training_power_w=6.0,
    mobilenet_inference_ms=_SHARED_INFERENCE_MS,
    battery_wh=19.44,
)
ONEPLUS_NORD_2_5G = DeviceProfile(
    name="OnePlus Nord 2 5G",
    training_power_w=2.6,
    mobilenet_inference_ms=_SHARED_INFERENCE_MS,
    battery_wh=17.71,
)
XIAOMI_POCO_X3 = DeviceProfile(
    name="Xiaomi Poco X3",
    training_power_w=8.5,
    mobilenet_inference_ms=_SHARED_INFERENCE_MS,
    battery_wh=23.12,
)

#: The four devices of Table 2, in paper order.
PAPER_DEVICES: tuple[DeviceProfile, ...] = (
    XIAOMI_12_PRO,
    SAMSUNG_GALAXY_S22_ULTRA,
    ONEPLUS_NORD_2_5G,
    XIAOMI_POCO_X3,
)


def device_by_name(name: str) -> DeviceProfile:
    """Look up a paper device by (case-insensitive) name."""
    for dev in PAPER_DEVICES:
        if dev.name.lower() == name.lower():
            return dev
    raise KeyError(f"unknown device {name!r}; known: {[d.name for d in PAPER_DEVICES]}")
