"""Battery budgets: τᵢ computation and Table 2's round counts."""

from __future__ import annotations

from dataclasses import dataclass

from .devices import DeviceProfile, PAPER_DEVICES
from .traces import (
    CIFAR10_WORKLOAD,
    FEMNIST_WORKLOAD,
    WorkloadSpec,
    per_round_energy_mwh,
    per_round_energy_wh,
)

__all__ = [
    "budget_rounds",
    "Table2Row",
    "table2_rows",
    "PAPER_BATTERY_FRACTION",
]

#: Battery share allotted to training in the paper's constrained setting.
PAPER_BATTERY_FRACTION = {"CIFAR-10": 0.10, "FEMNIST": 0.50}


def budget_rounds(
    device: DeviceProfile, workload: WorkloadSpec, battery_fraction: float
) -> int:
    """τᵢ: training rounds until ``battery_fraction`` of the battery is
    exhausted (paper §4.2)."""
    if not 0.0 < battery_fraction <= 1.0:
        raise ValueError("battery_fraction must be in (0, 1]")
    per_round = per_round_energy_wh(device, workload)
    return int(battery_fraction * device.battery_wh / per_round)


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2: per-device energy and budget for both datasets."""

    device: str
    cifar10_mwh: float
    femnist_mwh: float
    cifar10_rounds: int
    femnist_rounds: int


def table2_rows(
    devices: tuple[DeviceProfile, ...] = PAPER_DEVICES,
) -> list[Table2Row]:
    """Regenerate Table 2 from the trace pipeline."""
    rows = []
    for dev in devices:
        rows.append(
            Table2Row(
                device=dev.name,
                cifar10_mwh=per_round_energy_mwh(dev, CIFAR10_WORKLOAD),
                femnist_mwh=per_round_energy_mwh(dev, FEMNIST_WORKLOAD),
                cifar10_rounds=budget_rounds(
                    dev, CIFAR10_WORKLOAD, PAPER_BATTERY_FRACTION["CIFAR-10"]
                ),
                femnist_rounds=budget_rounds(
                    dev, FEMNIST_WORKLOAD, PAPER_BATTERY_FRACTION["FEMNIST"]
                ),
            )
        )
    return rows
