"""Energy-trace synthesis: the paper's §4.2 "Energy Traces" pipeline.

The methodology (verbatim from the paper):

1. take the per-sample MobileNet-v2 inference latency of each phone
   from the AI benchmark;
2. scale it by the ratio of model parameters to MobileNet-v2
   parameters, by the number of local steps ``E`` and by the batch size
   ``|ξ|`` to get the total inference time of one round;
3. apply FedScale's ×3 training-vs-inference multiplier to get the
   round's training time Δᵗ;
4. multiply by the Burnout training power ``P_hw`` (Eq. 2) to get the
   round's energy.

With the calibrated device constants this reproduces the endpoints the
paper publishes in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .devices import DeviceProfile, PAPER_DEVICES

__all__ = [
    "MOBILENET_V2_PARAMS",
    "FEDSCALE_TRAIN_MULTIPLIER",
    "WorkloadSpec",
    "CIFAR10_WORKLOAD",
    "FEMNIST_WORKLOAD",
    "round_duration_s",
    "per_round_energy_wh",
    "per_round_energy_mwh",
    "communication_energy_wh",
    "EnergyTrace",
    "build_trace",
    "assign_devices_round_robin",
]

#: MobileNet-v2 parameter count (the AI-benchmark reference model).
MOBILENET_V2_PARAMS = 3_400_000

#: FedScale's empirical training:inference time ratio.
FEDSCALE_TRAIN_MULTIPLIER = 3.0


@dataclass(frozen=True)
class WorkloadSpec:
    """Per-dataset training workload parameters (Table 1 of the paper)."""

    name: str
    model_params: int
    local_steps: int
    batch_size: int
    total_rounds: int
    #: bytes exchanged per neighbor per round = 4 bytes/param (float32),
    #: used by the communication-energy estimate.
    bytes_per_param: int = 4

    def __post_init__(self) -> None:
        if min(self.model_params, self.local_steps, self.batch_size,
               self.total_rounds) <= 0:
            raise ValueError("workload parameters must be positive")


CIFAR10_WORKLOAD = WorkloadSpec(
    name="CIFAR-10", model_params=89_834, local_steps=20, batch_size=32,
    total_rounds=1000,
)
FEMNIST_WORKLOAD = WorkloadSpec(
    name="FEMNIST", model_params=1_690_046, local_steps=7, batch_size=16,
    total_rounds=3000,
)


def round_duration_s(device: DeviceProfile, workload: WorkloadSpec) -> float:
    """Training duration Δᵗ of one round on ``device``, in seconds."""
    inference_s = device.mobilenet_inference_ms / 1000.0
    scale = workload.model_params / MOBILENET_V2_PARAMS
    total_inference = inference_s * scale * workload.local_steps * workload.batch_size
    return FEDSCALE_TRAIN_MULTIPLIER * total_inference


def per_round_energy_wh(device: DeviceProfile, workload: WorkloadSpec) -> float:
    """Eq. 2: training energy of one round, in watt-hours."""
    return device.training_power_w * round_duration_s(device, workload) / 3600.0


def per_round_energy_mwh(device: DeviceProfile, workload: WorkloadSpec) -> float:
    """Per-round training energy in milliwatt-hours (Table 2's unit)."""
    return 1000.0 * per_round_energy_wh(device, workload)


def communication_energy_wh(
    device: DeviceProfile,
    workload: WorkloadSpec,
    degree: int,
    link_mbps: float = 150.0,
) -> float:
    """Energy to share the model with ``degree`` neighbors once.

    Transmit time = degree × model bytes / link rate (receive-side radio
    cost is folded into the radio power constant); energy = radio power
    × time. Calibrated so that 256 CIFAR-10 nodes over 1000 rounds on a
    6-regular topology spend ≈7 Wh on communication+aggregation — the
    paper's §1 figure — roughly 200× below the 1.51 kWh training cost.
    """
    if degree < 0:
        raise ValueError("degree must be non-negative")
    if link_mbps <= 0:
        raise ValueError("link_mbps must be positive")
    model_bits = workload.model_params * workload.bytes_per_param * 8
    seconds = degree * model_bits / (link_mbps * 1e6)
    return device.communication_power_w * seconds / 3600.0


@dataclass(frozen=True)
class EnergyTrace:
    """Per-node energy characteristics for one workload.

    Arrays are indexed by node id; ``budget_rounds[i]`` is τᵢ, the
    battery-limited number of training rounds (paper §2.3, Table 2).
    """

    devices: tuple[DeviceProfile, ...]
    train_energy_wh: np.ndarray
    comm_energy_wh: np.ndarray
    budget_rounds: np.ndarray

    @property
    def n_nodes(self) -> int:
        return len(self.devices)


def assign_devices_round_robin(
    n_nodes: int, devices: tuple[DeviceProfile, ...] = PAPER_DEVICES
) -> tuple[DeviceProfile, ...]:
    """Distribute nodes evenly across device types (paper §4.2: "we
    distribute the 256 nodes evenly among the four types")."""
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    return tuple(devices[i % len(devices)] for i in range(n_nodes))


def build_trace(
    n_nodes: int,
    workload: WorkloadSpec,
    battery_fraction: float,
    degree: int = 6,
    devices: tuple[DeviceProfile, ...] | None = None,
) -> EnergyTrace:
    """Construct the per-node energy trace used by the simulator.

    ``battery_fraction`` is the share of each phone's battery allotted
    to training (0.10 for CIFAR-10, 0.50 for FEMNIST in the paper);
    τᵢ = floor(fraction × battery / per-round energy).
    """
    if not 0.0 < battery_fraction <= 1.0:
        raise ValueError("battery_fraction must be in (0, 1]")
    assigned = (
        devices if devices is not None else assign_devices_round_robin(n_nodes)
    )
    if len(assigned) != n_nodes:
        raise ValueError("devices tuple must have one entry per node")

    train = np.array([per_round_energy_wh(d, workload) for d in assigned])
    comm = np.array(
        [communication_energy_wh(d, workload, degree) for d in assigned]
    )
    budgets = np.floor(battery_fraction * np.array([d.battery_wh for d in assigned])
                       / train).astype(np.int64)
    return EnergyTrace(
        devices=assigned,
        train_energy_wh=train,
        comm_energy_wh=comm,
        budget_rounds=budgets,
    )
