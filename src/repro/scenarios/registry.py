"""Name → scenario-factory registry (the scenario analogue of
:mod:`repro.core.registry`).

Factories, not instances, are registered so every lookup returns a
fresh, immutable spec; ``register`` rejects duplicate names so two
modules cannot silently shadow each other's scenarios."""

from __future__ import annotations

from typing import Callable

from .spec import ScenarioSpec

__all__ = [
    "register_scenario",
    "get_scenario",
    "available_scenarios",
]

_REGISTRY: dict[str, Callable[[], ScenarioSpec]] = {}


def register_scenario(
    name: str,
) -> Callable[[Callable[[], ScenarioSpec]], Callable[[], ScenarioSpec]]:
    """Decorator registering a zero-arg scenario factory under ``name``.
    The factory's spec must carry the same name it is registered under
    (checked lazily at first lookup)."""

    def deco(factory: Callable[[], ScenarioSpec]) -> Callable[[], ScenarioSpec]:
        key = name.lower()
        if key in _REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        _REGISTRY[key] = factory
        return factory

    return deco


def get_scenario(name: str) -> ScenarioSpec:
    """Instantiate a registered scenario by name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        )
    spec = _REGISTRY[key]()
    if spec.name.lower() != key:
        raise ValueError(
            f"scenario registered as {name!r} carries spec name "
            f"{spec.name!r}; registry and spec names must match"
        )
    return spec


def available_scenarios() -> list[str]:
    """Sorted registered scenario names."""
    return sorted(_REGISTRY)
