"""Built-in scenario definitions.

Two families are registered at import time:

* **The preset zoo as scenarios** — every experiment preset is exposed
  as a scenario of the same name (default algorithm: ``skiptrain``, or
  ``async-skiptrain`` for the ``-async`` presets), so the scenario
  surface covers everything the preset surface did without breaking any
  preset name.
* **Churn scenarios** — named compositions of churn, failures, and
  battery constraints used by the golden-trace regression tests, the
  conformance suite, and the CI smoke sweep. They run at bench scale
  with short horizons, so recomputing a golden trace takes seconds.
"""

from __future__ import annotations

from ..experiments.presets import PRESETS
from .registry import register_scenario
from .spec import (
    AlgorithmSpec,
    ChurnEventSpec,
    ChurnSpec,
    EnergySpec,
    FailureSpec,
    ScenarioSpec,
)

__all__ = ["churn_ramp", "churn_crash", "churn_async"]


def _preset_scenario(preset_name: str) -> ScenarioSpec:
    algorithm = (
        "async-skiptrain" if preset_name.endswith("-async") else "skiptrain"
    )
    return ScenarioSpec(
        name=preset_name,
        preset=preset_name,
        algorithm=AlgorithmSpec(name=algorithm),
        description=(
            f"the {preset_name!r} preset as a scenario (default "
            f"algorithm {algorithm})"
        ),
    )


def _register_preset_zoo() -> None:
    for preset_name in PRESETS:
        register_scenario(preset_name)(
            # bind the loop variable per factory
            lambda name=preset_name: _preset_scenario(name)
        )


@register_scenario("churn-ramp")
def churn_ramp() -> ScenarioSpec:
    """Membership ramp-up: four nodes enroll mid-run, each handed the
    mean of its alive neighbors' models on arrival."""
    return ScenarioSpec(
        name="churn-ramp",
        preset="cifar10-bench",
        total_rounds=24,
        eval_every=6,
        churn=ChurnSpec(
            initially_absent=(3, 11, 19, 27),
            events=(
                ChurnEventSpec(round=6, node=3, action="join"),
                ChurnEventSpec(round=10, node=11, action="join"),
                ChurnEventSpec(round=14, node=19, action="join"),
                ChurnEventSpec(round=18, node=27, action="join"),
            ),
        ),
        algorithm=AlgorithmSpec(name="skiptrain"),
        description="staggered joins with neighbor-mean state handoff",
    )


@register_scenario("churn-crash")
def churn_crash() -> ScenarioSpec:
    """Churn composed with transient failures: two nodes leave for
    good, one departs and re-enrolls (fresh handoff on return), while a
    crash window takes two others down mid-run."""
    return ScenarioSpec(
        name="churn-crash",
        preset="cifar10-bench",
        total_rounds=24,
        eval_every=6,
        churn=ChurnSpec(
            events=(
                ChurnEventSpec(round=8, node=1, action="leave"),
                ChurnEventSpec(round=8, node=2, action="leave"),
                ChurnEventSpec(round=10, node=17, action="leave"),
                ChurnEventSpec(round=16, node=17, action="join"),
            ),
        ),
        failures=FailureSpec(kind="window", nodes=(4, 5), start=10, end=14),
        algorithm=AlgorithmSpec(name="d-psgd"),
        description="leaves + a re-enrollment under a crash window",
    )


@register_scenario("churn-async")
def churn_async() -> ScenarioSpec:
    """The async composition the CI smoke sweep exercises: event-driven
    gossip with joins, a departure, a crash window, and the engine's
    battery-depletion gate all active at once."""
    return ScenarioSpec(
        name="churn-async",
        preset="cifar10-bench-async",
        total_rounds=24,
        eval_every=6,
        churn=ChurnSpec(
            initially_absent=(7, 23),
            events=(
                ChurnEventSpec(round=6, node=7, action="join"),
                ChurnEventSpec(round=9, node=12, action="leave"),
                ChurnEventSpec(round=12, node=23, action="join"),
            ),
        ),
        failures=FailureSpec(kind="window", nodes=(2, 3), start=8, end=13),
        energy=EnergySpec(enforce_budgets=True),
        algorithm=AlgorithmSpec(name="async-skiptrain"),
        description="async gossip under churn, failures and battery gates",
    )


_register_preset_zoo()
