"""Node churn: scheduled joins and leaves with state handoff.

Real decentralized fleets are not a fixed membership: phones enroll
mid-run, disappear for good, or drop out and later re-enroll. The
failure models in :mod:`repro.simulation.failures` cover *transient*
outages (a dead node's state is frozen and it resumes where it left
off); churn is the *membership* axis — a node that has not joined yet
(or has left) simply is not part of the system: it never trains, never
communicates, and is never selected as a gossip partner by either
engine.

The model is a deterministic schedule over the round index, which is
what keeps scenario cells checkpointable: the membership mask for any
round is a pure function of ``t``, so a resumed run recomputes it
instead of carrying hidden state (the async engine only keeps a cursor
recording through which round join handoffs have been applied — see
:meth:`~repro.simulation.async_engine.AsyncGossipEngine.state_dict`).

State handoff
-------------
A joining node cannot start from the long-stale initialization it was
constructed with — real systems bootstrap newcomers from their
neighbors. On a join at round ``t`` the new node's model row is set to
the **mean of its alive, present neighbors'** rows (veterans only:
nodes joining in the same round do not seed each other). A joiner whose
entire neighborhood is down or absent keeps its current row — the
documented fallback, matching the failure models' freeze semantics.
A joiner that is *itself* dead at its join round (its enrollment lands
inside a failure window) likewise receives no handoff: it cannot fetch
neighbor state while down, so it enrolls with its current row and
resumes from it when the window ends — identically in both engines.
Both engines apply the handoff *before* the round's (or activation's)
training, so a joiner trains on top of the handed-off model.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["ChurnSchedule", "apply_join_handoff"]

_ACTIONS = ("join", "leave")


class ChurnSchedule:
    """Deterministic membership schedule over 1-based round indices.

    ``events`` is an iterable of ``(round, node, action)`` triples with
    ``action`` in ``{"join", "leave"}``; ``initially_absent`` names the
    nodes that are not members before their first join. An event takes
    effect *at* its round: a node joining at round ``t`` participates
    in round ``t`` (after its state handoff), a node leaving at round
    ``t`` is gone from round ``t`` on.

    The schedule is validated on construction: events must alternate
    consistently with each node's membership (no joining a present
    node, no leaving an absent one), two events may not name the same
    ``(round, node)`` pair, and at least one node must remain present
    at every point — an empty system has no gossip semantics.
    """

    def __init__(
        self,
        n_nodes: int,
        events: Iterable[tuple[int, int, str]] = (),
        initially_absent: Sequence[int] = (),
    ) -> None:
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        self.n_nodes = n_nodes
        initial = np.ones(n_nodes, dtype=bool)
        for i in initially_absent:
            if not 0 <= int(i) < n_nodes:
                raise ValueError(f"initially_absent node {i} out of range")
            initial[int(i)] = False
        self.initially_absent = tuple(sorted(int(i) for i in initially_absent))
        if len(set(self.initially_absent)) != len(self.initially_absent):
            raise ValueError("duplicate node in initially_absent")

        normalized: list[tuple[int, int, str]] = []
        for rnd, node, action in events:
            rnd, node = int(rnd), int(node)
            if rnd < 1:
                raise ValueError(f"event round must be >= 1, got {rnd}")
            if not 0 <= node < n_nodes:
                raise ValueError(f"event node {node} out of range")
            if action not in _ACTIONS:
                raise ValueError(
                    f"event action must be one of {_ACTIONS}, got {action!r}"
                )
            normalized.append((rnd, node, action))
        normalized.sort(key=lambda e: (e[0], e[1]))
        if len({(r, i) for r, i, _ in normalized}) != len(normalized):
            raise ValueError("two churn events name the same (round, node)")
        self.events = tuple(normalized)

        # Replay the schedule once: validates the join/leave alternation
        # and precomputes one membership mask per distinct event round,
        # so present(t) is a bisect + array lookup.
        self._initial = initial
        if not initial.any():
            raise ValueError("at least one node must be initially present")
        breakpoints: list[int] = []
        masks: list[np.ndarray] = []
        joins: dict[int, list[int]] = {}
        current = initial.copy()
        for rnd in sorted({r for r, _, _ in normalized}):
            for r, node, action in normalized:
                if r != rnd:
                    continue
                if action == "join":
                    if current[node]:
                        raise ValueError(
                            f"node {node} joins at round {r} but is "
                            f"already present"
                        )
                    current[node] = True
                    joins.setdefault(r, []).append(node)
                else:
                    if not current[node]:
                        raise ValueError(
                            f"node {node} leaves at round {r} but is "
                            f"already absent"
                        )
                    current[node] = False
            if not current.any():
                raise ValueError(
                    f"churn schedule empties the system at round {rnd}"
                )
            breakpoints.append(rnd)
            masks.append(current.copy())
        self._breakpoints = breakpoints
        self._masks = masks
        self._joins = {r: tuple(sorted(ids)) for r, ids in joins.items()}

    def present(self, t: int) -> np.ndarray:
        """Membership mask during round ``t`` (1-based): the initial
        membership with every event of round ``<= t`` applied. The
        returned array is shared — do not mutate it."""
        if t < 1:
            raise ValueError("round index must be >= 1")
        idx = bisect_right(self._breakpoints, t)
        return self._initial if idx == 0 else self._masks[idx - 1]

    def joins_at(self, t: int) -> tuple[int, ...]:
        """Node ids whose join event fires at round ``t`` (ascending)."""
        return self._joins.get(t, ())

    @property
    def max_event_round(self) -> int:
        """The last round any event fires at (0 for an empty schedule)."""
        return self._breakpoints[-1] if self._breakpoints else 0

    @property
    def has_events(self) -> bool:
        return bool(self.events) or bool(self.initially_absent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChurnSchedule(n_nodes={self.n_nodes}, "
            f"events={len(self.events)}, "
            f"initially_absent={self.initially_absent})"
        )


def apply_join_handoff(
    state: np.ndarray,
    joiners: Sequence[int],
    neighbors_of: Callable[[int], np.ndarray],
    eligible: np.ndarray,
) -> None:
    """Initialize each joiner's state row from the mean of its eligible
    neighbors, in place.

    ``eligible`` marks the nodes allowed to donate state (present and
    alive this round); same-round joiners are excluded from the donor
    set so the handoff is order-independent. A joiner with no eligible
    donor neighbor keeps its current row (documented fallback).
    """
    donors = np.asarray(eligible, dtype=bool).copy()
    joiner_list = sorted(int(i) for i in joiners)
    for i in joiner_list:
        donors[i] = False
    for i in joiner_list:
        nbrs = np.asarray(neighbors_of(i), dtype=np.int64)
        nbrs = nbrs[donors[nbrs]] if nbrs.size else nbrs
        if nbrs.size:
            state[i] = state[nbrs].mean(axis=0)
