"""Declarative scenario specifications.

A :class:`ScenarioSpec` composes every experiment axis the simulator
supports — topology (static or dynamic), node churn, failures, energy
constraints, data skew, and the algorithm/policy — into one validated,
JSON-serializable object. Scenarios make a workload a *data* change
instead of a code change: the sweep orchestrator, the CLI, and the
conformance tests all consume the same object, and a spec committed as
JSON is a complete, reproducible description of a run (given a seed).

The dict codec is strict both ways: unknown keys are rejected on
``from_dict`` (a typo'd axis must not silently disable itself) and
``to_dict`` round-trips exactly (``from_dict(spec.to_dict()) == spec``).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .churn import ChurnSchedule

__all__ = [
    "TopologySpec",
    "ChurnEventSpec",
    "ChurnSpec",
    "FailureSpec",
    "EnergySpec",
    "DataSpec",
    "AlgorithmSpec",
    "ScenarioSpec",
]

#: Topology kinds: a fixed random regular graph, a fresh random regular
#: graph every round, or one rewired every ``period`` rounds.
TOPOLOGY_KINDS = ("regular", "dynamic-random", "dynamic-periodic")
FAILURE_KINDS = ("none", "window", "independent")
PARTITION_KINDS = (None, "iid", "dirichlet")


def _require_keys(obj: dict, allowed: set[str], where: str) -> None:
    unknown = set(obj) - allowed
    if unknown:
        raise ValueError(
            f"unknown key(s) {sorted(unknown)} in {where} "
            f"(allowed: {sorted(allowed)})"
        )


@dataclass(frozen=True)
class TopologySpec:
    """The communication graph. ``degree=None`` uses the preset's first
    degree. ``period`` applies to ``dynamic-periodic`` only."""

    kind: str = "regular"
    degree: int | None = None
    period: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ValueError(
                f"topology kind must be one of {TOPOLOGY_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.degree is not None and self.degree <= 0:
            raise ValueError("topology degree must be positive")
        if self.kind == "dynamic-periodic":
            if self.period is None or self.period <= 0:
                raise ValueError(
                    "dynamic-periodic topology requires a positive period"
                )
        elif self.period is not None:
            raise ValueError(
                f"period only applies to dynamic-periodic topologies, "
                f"not {self.kind!r}"
            )

    @property
    def is_dynamic(self) -> bool:
        return self.kind != "regular"


@dataclass(frozen=True)
class ChurnEventSpec:
    """One scheduled membership change (1-based round)."""

    round: int
    node: int
    action: str  # "join" | "leave"

    def __post_init__(self) -> None:
        if self.round < 1:
            raise ValueError("churn event round must be >= 1")
        if self.node < 0:
            raise ValueError("churn event node must be non-negative")
        if self.action not in ("join", "leave"):
            raise ValueError(
                f'churn action must be "join" or "leave", got {self.action!r}'
            )


@dataclass(frozen=True)
class ChurnSpec:
    """Scheduled node joins/leaves (see
    :class:`repro.scenarios.churn.ChurnSchedule` for the semantics —
    joiners hand off state from their alive neighbors' mean)."""

    events: tuple[ChurnEventSpec, ...] = ()
    initially_absent: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(
            self, "initially_absent", tuple(self.initially_absent)
        )

    @property
    def active(self) -> bool:
        return bool(self.events) or bool(self.initially_absent)

    def build(self, n_nodes: int) -> ChurnSchedule | None:
        """Materialize the validated :class:`ChurnSchedule` (or ``None``
        when the spec declares no churn)."""
        from .churn import ChurnSchedule

        if not self.active:
            return None
        return ChurnSchedule(
            n_nodes,
            [(e.round, e.node, e.action) for e in self.events],
            initially_absent=self.initially_absent,
        )


@dataclass(frozen=True)
class FailureSpec:
    """Transient-outage model: ``window`` freezes ``nodes`` during
    rounds ``[start, end]`` (deterministic, checkpoint-safe);
    ``independent`` crashes each node with probability ``p`` per round
    (rng-backed — rejected by run checkpoints)."""

    kind: str = "none"
    nodes: tuple[int, ...] = ()
    start: int = 1
    end: int = 1
    p: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"failure kind must be one of {FAILURE_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.kind == "window":
            if not self.nodes:
                raise ValueError("window failures need at least one node")
            if self.start < 1 or self.end < self.start:
                raise ValueError("window failures need 1 <= start <= end")
        if self.kind == "independent" and not 0.0 < self.p < 1.0:
            raise ValueError("independent failures need 0 < p < 1")

    @property
    def active(self) -> bool:
        return self.kind != "none"


@dataclass(frozen=True)
class EnergySpec:
    """Energy axis overrides. ``battery_fraction`` replaces the
    preset's battery share (changing every node's τᵢ budget);
    ``enforce_budgets`` turns on the async engine's battery-depletion
    gate (async scenarios only)."""

    battery_fraction: float | None = None
    enforce_budgets: bool = False

    def __post_init__(self) -> None:
        if self.battery_fraction is not None and not (
            0.0 < self.battery_fraction <= 1.0
        ):
            raise ValueError("battery_fraction must be in (0, 1]")


@dataclass(frozen=True)
class DataSpec:
    """Data-partition skew override: ``None`` keeps the preset's
    partition (shard or writer), ``"iid"`` is the uniform control, and
    ``"dirichlet"`` applies Dirichlet(α) label skew."""

    partition: str | None = None
    alpha: float | None = None

    def __post_init__(self) -> None:
        if self.partition not in PARTITION_KINDS:
            raise ValueError(
                f"data partition must be one of {PARTITION_KINDS}, "
                f"got {self.partition!r}"
            )
        if self.partition == "dirichlet":
            if self.alpha is None or self.alpha <= 0:
                raise ValueError("dirichlet partition needs alpha > 0")
        elif self.alpha is not None:
            raise ValueError("alpha only applies to dirichlet partitions")


@dataclass(frozen=True)
class AlgorithmSpec:
    """The training algorithm (sync names) or async policy (the
    ``async-*`` names); optional (Γ_train, Γ_sync) schedule override."""

    name: str = "skiptrain"
    gamma_train: int | None = None
    gamma_sync: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("algorithm name must be non-empty")
        if (self.gamma_train is None) != (self.gamma_sync is None):
            raise ValueError(
                "gamma_train and gamma_sync must be set together"
            )
        if self.gamma_train is not None and (
            self.gamma_train < 0 or self.gamma_sync < 0
        ):
            raise ValueError("gamma values must be non-negative")

    @property
    def is_async(self) -> bool:
        return self.name.lower().startswith("async-")


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, fully declarative experiment scenario.

    ``preset`` names the base configuration (dataset scale, model,
    training hyperparameters); every other field composes an axis on
    top of it. ``seed`` and ``total_rounds`` are defaults the sweep
    orchestrator overrides per cell (``total_rounds=None`` falls back
    to the preset's; for async algorithms it means expected activations
    per node). ``eval_every=None`` likewise uses the preset's cadence.
    """

    name: str
    preset: str = "cifar10-bench"
    seed: int = 0
    total_rounds: int | None = None
    eval_every: int | None = None
    topology: TopologySpec = field(default_factory=TopologySpec)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    failures: FailureSpec = field(default_factory=FailureSpec)
    energy: EnergySpec = field(default_factory=EnergySpec)
    data: DataSpec = field(default_factory=DataSpec)
    algorithm: AlgorithmSpec = field(default_factory=AlgorithmSpec)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if "__" in self.name or "/" in self.name:
            raise ValueError(
                'scenario names may not contain "__" or "/" (they embed '
                "into artifact cell ids and paths)"
            )
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.total_rounds is not None and self.total_rounds <= 0:
            raise ValueError("total_rounds must be positive when given")
        if self.eval_every is not None and self.eval_every <= 0:
            raise ValueError("eval_every must be positive when given")
        if self.energy.enforce_budgets and not self.algorithm.is_async:
            raise ValueError(
                "enforce_budgets is the async engine's battery gate; "
                "sync scenarios constrain energy through the "
                "skiptrain-constrained/greedy algorithms"
            )

    @property
    def kind(self) -> str:
        """Execution backend implied by the algorithm name."""
        return "async" if self.algorithm.is_async else "sync"

    # -- codec ---------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready; tuples become lists)."""
        return {
            "name": self.name,
            "preset": self.preset,
            "seed": self.seed,
            "total_rounds": self.total_rounds,
            "eval_every": self.eval_every,
            "topology": {
                "kind": self.topology.kind,
                "degree": self.topology.degree,
                "period": self.topology.period,
            },
            "churn": {
                "events": [
                    {"round": e.round, "node": e.node, "action": e.action}
                    for e in self.churn.events
                ],
                "initially_absent": list(self.churn.initially_absent),
            },
            "failures": {
                "kind": self.failures.kind,
                "nodes": list(self.failures.nodes),
                "start": self.failures.start,
                "end": self.failures.end,
                "p": self.failures.p,
            },
            "energy": {
                "battery_fraction": self.energy.battery_fraction,
                "enforce_budgets": self.energy.enforce_budgets,
            },
            "data": {
                "partition": self.data.partition,
                "alpha": self.data.alpha,
            },
            "algorithm": {
                "name": self.algorithm.name,
                "gamma_train": self.algorithm.gamma_train,
                "gamma_sync": self.algorithm.gamma_sync,
            },
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "ScenarioSpec":
        """Strict inverse of :meth:`to_dict`: unknown keys anywhere in
        the tree are rejected; missing sub-objects take their defaults."""
        if not isinstance(obj, dict):
            raise ValueError(f"scenario spec must be a dict, got {type(obj)}")
        _require_keys(
            obj,
            {
                "name", "preset", "seed", "total_rounds", "eval_every",
                "topology", "churn", "failures", "energy", "data",
                "algorithm", "description",
            },
            "scenario spec",
        )
        if "name" not in obj:
            raise ValueError("scenario spec requires a name")

        topo = dict(obj.get("topology") or {})
        _require_keys(topo, {"kind", "degree", "period"}, "topology")
        churn_obj = dict(obj.get("churn") or {})
        _require_keys(churn_obj, {"events", "initially_absent"}, "churn")
        events = []
        for ev in churn_obj.get("events") or ():
            ev = dict(ev)
            _require_keys(ev, {"round", "node", "action"}, "churn event")
            events.append(ChurnEventSpec(**ev))
        failures = dict(obj.get("failures") or {})
        _require_keys(
            failures, {"kind", "nodes", "start", "end", "p"}, "failures"
        )
        if "nodes" in failures:
            failures["nodes"] = tuple(failures["nodes"])
        energy = dict(obj.get("energy") or {})
        _require_keys(
            energy, {"battery_fraction", "enforce_budgets"}, "energy"
        )
        data = dict(obj.get("data") or {})
        _require_keys(data, {"partition", "alpha"}, "data")
        algorithm = dict(obj.get("algorithm") or {})
        _require_keys(
            algorithm, {"name", "gamma_train", "gamma_sync"}, "algorithm"
        )
        return cls(
            name=obj["name"],
            preset=obj.get("preset", "cifar10-bench"),
            seed=int(obj.get("seed", 0)),
            total_rounds=obj.get("total_rounds"),
            eval_every=obj.get("eval_every"),
            topology=TopologySpec(**topo),
            churn=ChurnSpec(
                events=tuple(events),
                initially_absent=tuple(
                    churn_obj.get("initially_absent") or ()
                ),
            ),
            failures=FailureSpec(**failures),
            energy=EnergySpec(**energy),
            data=DataSpec(**data),
            algorithm=AlgorithmSpec(**algorithm),
            description=obj.get("description", ""),
        )

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """A copy with fields replaced (dataclasses.replace re-running
        validation)."""
        return dataclasses.replace(self, **changes)
