"""Compile a :class:`~repro.scenarios.spec.ScenarioSpec` into a wired,
runnable (engine, algorithm) pair.

This is the single place scenario axes meet the execution stack: the
spec's topology/churn/failure/energy/data/algorithm blocks are resolved
against the named preset and wired through
:func:`repro.experiments.runner.build_run` /
:func:`~repro.experiments.runner.build_async_run` — the same plumbing
every non-scenario cell uses, so a scenario with all axes at their
defaults is *byte-identical* to the plain preset cell.

Compilation is deterministic in ``(spec, seed, total_rounds)``: the
sweep orchestrator rebuilds a killed scenario cell by re-compiling and
restoring the mid-run checkpoint into the fresh engine, and the
resumed run is bit-for-bit equal to an uninterrupted one.

Composition rules enforced here (fail at compile time, not rounds into
a run):

* dynamic topologies are sync-only — the async engine selects partners
  from fixed neighbor lists, so ``kind="async"`` with a
  ``dynamic-*`` topology raises :class:`ValueError`;
* churn requires membership-aware mixing (sync) — compilation wires a
  masked provider over the scenario graph so departed nodes never
  enter the gossip GEMM;
* ``enforce_budgets`` is the async engine's battery gate (validated by
  the spec itself);
* churn cannot compose with exact all-reduce (the consensus average
  has no subgraph analogue for absent members).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol

import numpy as np

from ..core.schedule import RoundSchedule
from ..experiments.presets import ExperimentPreset, get_preset
from ..experiments.runner import (
    AsyncExperimentResult,
    ExperimentResult,
    PreparedExperiment,
    async_eval_cadence,
    build_async_run,
    build_run,
    prepare,
)
from ..simulation.failures import (
    CrashWindow,
    FailureModel,
    IndependentCrashes,
    masked_mixing,
)
from ..simulation.rng import RngFactory
from ..topology.dynamic import (
    PeriodicRewiring,
    RandomRegularEachRound,
    RegularGraphEachRound,
)
from ..topology.sparse import regular_neighbors
from .churn import ChurnSchedule
from .spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx as nx
    import scipy.sparse as sp

    from ..experiments.artifacts import PlanCell
    from ..topology.sparse import NeighborList

    class DynamicGraph(Protocol):
        """A ``t -> Graph`` generator that knows its node count
        (:class:`~repro.topology.dynamic.RegularGraphEachRound` shape)."""

        n_nodes: int

        def __call__(self, t: int) -> nx.Graph: ...

__all__ = [
    "CompiledRun",
    "compile_run",
    "scenario_base",
    "validate_composition",
    "run_scenario",
    "build_scenario_plan",
    "scenario_trace",
    "scenario_mixing_provider",
]

TRACE_SCHEMA = "repro/scenario-trace/v1"


def validate_composition(spec: ScenarioSpec, kind: str = "auto") -> str:
    """The compile-time composition rules that need no preset lookup:
    kind consistency, async × dynamic topology, churn × all-reduce.
    Returns the resolved kind. :func:`compile_run` calls this first; the CLI calls it up
    front so an invalid registered scenario fails with a clean error
    before any cell starts."""
    if kind not in ("auto", "sync", "async"):
        raise ValueError(f'kind must be "auto", "sync" or "async", got {kind!r}')
    resolved_kind = spec.kind
    if kind != "auto" and kind != resolved_kind:
        raise ValueError(
            f"scenario {spec.name!r} compiles to kind {resolved_kind!r} "
            f"(algorithm {spec.algorithm.name!r}), got kind={kind!r}"
        )
    if resolved_kind == "async" and spec.topology.is_dynamic:
        raise ValueError(
            f"scenario {spec.name!r}: dynamic topologies are not "
            f"wired into AsyncGossipEngine partner selection; use a "
            f'static "regular" topology for async scenarios'
        )
    if spec.churn.active and spec.algorithm.name.lower().endswith("allreduce"):
        raise ValueError(
            f"scenario {spec.name!r}: exact all-reduce averages every "
            f"node's state and has no membership-masked analogue; churn "
            f"composes with gossip algorithms only"
        )
    return resolved_kind


def scenario_base(
    spec: ScenarioSpec, preset: ExperimentPreset | None = None
) -> tuple[ExperimentPreset, int]:
    """Resolve the execution-base preset and topology degree for one
    scenario: the named (or injected) preset with the spec's
    battery-fraction override applied, and the spec's degree falling
    back to the preset's first.

    The single home of this resolution — :func:`compile_run` and the
    sweep pool's parent-side dataset prep must agree on it, or a pooled
    scenario cell would be prepared against a different base than the
    one compilation wires (and the byte-identity contract would break).
    """
    base = preset if preset is not None else get_preset(spec.preset)
    if spec.energy.battery_fraction is not None:
        base = dataclasses.replace(
            base, battery_fraction=spec.energy.battery_fraction
        )
    degree = (
        spec.topology.degree
        if spec.topology.degree is not None
        else base.degrees[0]
    )
    return base, int(degree)


def scenario_mixing_provider(
    graph: "nx.Graph | NeighborList | DynamicGraph",
    churn: ChurnSchedule | None = None,
    failure_model: FailureModel | None = None,
    cache_size: int = 64,
) -> Callable[[int], sp.csr_matrix]:
    """Per-round mixing provider over the eligible (member ∧ alive)
    subgraph of ``graph``.

    ``graph`` is a fixed topology (either an ``nx.Graph`` or a
    :class:`~repro.topology.sparse.NeighborList`) or a callable
    ``t → Graph`` (a :class:`~repro.topology.dynamic.RegularGraphEachRound`).
    Static graphs memoize by eligibility mask (masked weights repeat
    across rounds with the same membership); dynamic graphs memoize by
    round. Both memos are bounded to ``cache_size`` entries with
    oldest-entry eviction — an rng-backed failure model draws a fresh
    mask nearly every round, and a million-round run must not grow one
    cached matrix per round forever (the
    :class:`~repro.simulation.failures.IndependentCrashes` memo bound
    exists for the same reason).
    """
    if churn is None and failure_model is None:
        raise ValueError(
            "scenario_mixing_provider needs a churn schedule or failure "
            "model; without either, use the static mixing matrix directly"
        )
    if cache_size <= 0:
        raise ValueError("cache_size must be positive")
    n = graph.n_nodes if callable(graph) else graph.number_of_nodes()
    all_on = np.ones(n, dtype=bool)

    def eligible(t: int) -> np.ndarray:
        mask = all_on
        if churn is not None:
            mask = mask & churn.present(t)
        if failure_model is not None:
            mask = mask & failure_model.alive(t)
        return mask

    if not callable(graph):
        static_graph = graph
        cache: dict[bytes, sp.csr_matrix] = {}

        def provider(t: int) -> sp.csr_matrix:
            mask = eligible(t)
            if mask.tobytes() not in cache and len(cache) >= cache_size:
                cache.pop(next(iter(cache)))  # oldest insertion
            return masked_mixing(static_graph, mask, cache)

        return provider

    dyn_graph = graph
    lru: dict[int, sp.csr_matrix] = {}

    def dyn_provider(t: int) -> sp.csr_matrix:
        if t not in lru:
            if len(lru) >= cache_size:
                lru.pop(min(lru))
            lru[t] = masked_mixing(dyn_graph(t), eligible(t))
        return lru[t]

    return dyn_provider


def _build_failure_model(
    spec: ScenarioSpec, n_nodes: int, seed: int
) -> FailureModel | None:
    f = spec.failures
    if not f.active:
        return None
    if f.kind == "window":
        if any(i >= n_nodes for i in f.nodes):
            raise ValueError(
                f"failure nodes {sorted(f.nodes)} out of range for "
                f"{n_nodes} nodes"
            )
        return CrashWindow(n_nodes, list(f.nodes), f.start, f.end)
    # rng-backed churn: its own named stream off the cell seed, so the
    # crash pattern never perturbs event/batch/eval randomness
    return IndependentCrashes(
        n_nodes, f.p, rng=RngFactory(seed).stream("failures")
    )


@dataclass
class CompiledRun:
    """A scenario wired into a concrete engine, ready to execute.

    ``total_rounds`` is the resolved horizon (expected activations per
    node for async scenarios); ``eval_every`` the resolved cadence in
    round-equivalent units. ``execute()`` runs to completion and
    returns the same result type the plain runner produces, so every
    downstream consumer (artifacts, figures, aggregation) is oblivious
    to whether a scenario produced the run.
    """

    spec: ScenarioSpec
    kind: str
    preset: ExperimentPreset
    prepared: PreparedExperiment
    engine: object  # SimulationEngine | AsyncGossipEngine
    algorithm: object  # Algorithm | AsyncPolicy
    seed: int
    total_rounds: int
    eval_every: int
    churn: ChurnSchedule | None
    failure_model: FailureModel | None

    def execute(
        self, round_hook: Callable | None = None
    ) -> "ExperimentResult | AsyncExperimentResult":
        if self.kind == "sync":
            history = self.engine.run(self.algorithm, round_hook=round_hook)
            assert self.engine.meter is not None
            return ExperimentResult(
                history=history,
                meter=self.engine.meter,
                trace=self.prepared.trace,
            )
        history = self.engine.run(
            self.algorithm,
            activations_per_node=self.total_rounds,
            eval_every=async_eval_cadence(self.eval_every, self.engine.n_nodes),
            event_hook=round_hook,
        )
        return AsyncExperimentResult(
            history=history,
            train_energy_wh=self.engine.train_energy_wh,
            trace=self.prepared.trace,
        )


def compile_run(
    spec: ScenarioSpec,
    kind: str = "auto",
    *,
    seed: int | None = None,
    total_rounds: int | None = None,
    preset: ExperimentPreset | None = None,
    prepared: PreparedExperiment | None = None,
    vectorized: bool = False,
    eval_mode: str = "auto",
    eval_on: str = "test",
    state_backend: str = "memory",
) -> CompiledRun:
    """Resolve and wire one scenario into a runnable cell.

    ``kind`` is normally ``"auto"`` (derived from the algorithm name);
    passing ``"sync"``/``"async"`` explicitly asserts the expectation
    and fails loudly on mismatch. ``seed``/``total_rounds`` override
    the spec's defaults (the sweep orchestrator passes the cell's).
    ``preset`` injects a preset object directly (tests); ``prepared``
    skips data synthesis when the caller already holds the cell's
    prepared experiment. ``state_backend`` selects the engine's
    state-matrix backing (:mod:`repro.simulation.state_store`).
    """
    resolved_kind = validate_composition(spec, kind)
    base, degree = scenario_base(spec, preset)
    n = base.n_nodes
    run_seed = seed if seed is not None else spec.seed
    rounds = (
        total_rounds
        if total_rounds is not None
        else (spec.total_rounds or base.total_rounds)
    )
    eval_every = spec.eval_every if spec.eval_every is not None else base.eval_every

    churn = spec.churn.build(n)
    failure_model = _build_failure_model(spec, n, run_seed)

    if prepared is None:
        prepared = prepare(
            base,
            degree,
            seed=run_seed,
            partition_override=spec.data.partition,
            dirichlet_alpha=spec.data.alpha,
        )

    schedule = None
    if spec.algorithm.gamma_train is not None:
        schedule = RoundSchedule(
            spec.algorithm.gamma_train, spec.algorithm.gamma_sync
        )

    if resolved_kind == "sync":
        mixing = _sync_mixing(spec, n, degree, run_seed, churn, failure_model)
        engine, algo = build_run(
            prepared,
            spec.algorithm.name,
            schedule=schedule,
            total_rounds=rounds,
            eval_every=eval_every,
            eval_on=eval_on,
            vectorized=vectorized,
            eval_mode=eval_mode,
            mixing=mixing,
            failure_model=failure_model,
            churn=churn,
            state_backend=state_backend,
        )
    else:
        engine, algo = build_async_run(
            prepared,
            spec.algorithm.name,
            schedule=schedule,
            activations_per_node=rounds,
            eval_on=eval_on,
            eval_mode=eval_mode,
            failure_model=failure_model,
            enforce_budgets=spec.energy.enforce_budgets,
            churn=churn,
            vectorized=vectorized,
            state_backend=state_backend,
        )
    return CompiledRun(
        spec=spec,
        kind=resolved_kind,
        preset=base,
        prepared=prepared,
        engine=engine,
        algorithm=algo,
        seed=run_seed,
        total_rounds=rounds,
        eval_every=eval_every,
        churn=churn,
        failure_model=failure_model,
    )


def _sync_mixing(
    spec: ScenarioSpec,
    n: int,
    degree: int,
    seed: int,
    churn: ChurnSchedule | None,
    failure_model: FailureModel | None,
) -> Callable[[int], sp.csr_matrix] | None:
    """The sync engine's mixing argument for a scenario: ``None``
    (prepared static matrix), a plain dynamic provider, or a
    churn/failure-masked provider over the scenario graph."""
    topo = spec.topology
    masked = churn is not None or failure_model is not None
    if not topo.is_dynamic:
        if not masked:
            return None  # the prepared static MH matrix
        return scenario_mixing_provider(
            regular_neighbors(n, degree, seed=seed), churn, failure_model
        )
    period = topo.period if topo.kind == "dynamic-periodic" else 1
    if not masked:
        if period == 1:
            return RandomRegularEachRound(n, degree, seed=seed)
        return PeriodicRewiring(n, degree, period, seed=seed)
    return scenario_mixing_provider(
        RegularGraphEachRound(n, degree, seed=seed, period=period),
        churn,
        failure_model,
    )


def run_scenario(
    spec: ScenarioSpec | str,
    *,
    seed: int | None = None,
    total_rounds: int | None = None,
    preset: ExperimentPreset | None = None,
    vectorized: bool = False,
) -> "ExperimentResult | AsyncExperimentResult":
    """Compile and execute one scenario (by spec or registered name)."""
    if isinstance(spec, str):
        from .registry import get_scenario

        spec = get_scenario(spec)
    return compile_run(
        spec,
        seed=seed,
        total_rounds=total_rounds,
        preset=preset,
        vectorized=vectorized,
    ).execute()


def build_scenario_plan(
    spec: ScenarioSpec,
    seeds: tuple[int, ...] = (0, 1, 2),
    total_rounds: int | None = None,
    preset: ExperimentPreset | None = None,
) -> "tuple[PlanCell, ...]":
    """Enumerate one scenario's sweep cells (one per seed). The cells
    carry the scenario's name, and their preset/algorithm/degree
    coordinates are resolved from the spec so artifacts group naturally
    next to non-scenario cells — without ever sharing a summary group
    (aggregation keys include the scenario name)."""
    from ..experiments.artifacts import PlanCell

    if not seeds:
        raise ValueError("need at least one seed")
    base, degree = scenario_base(spec, preset)
    rounds = (
        total_rounds
        if total_rounds is not None
        else (spec.total_rounds or base.total_rounds)
    )
    if rounds <= 0:
        raise ValueError("total_rounds must be positive")
    return tuple(
        PlanCell(
            preset=spec.preset,
            algorithm=spec.algorithm.name,
            degree=int(degree),
            seed=int(s),
            total_rounds=int(rounds),
            kind=spec.kind,
            scenario=spec.name,
        )
        for s in seeds
    )


def scenario_trace(
    spec: ScenarioSpec | str,
    *,
    seed: int | None = None,
    total_rounds: int | None = None,
    preset: ExperimentPreset | None = None,
) -> dict:
    """Run one scenario and distill it into a tiny regression trace:
    the final state matrix's SHA-256 plus the evaluation curve. The
    golden-trace tests commit these for named scenarios and recompute
    them, so a refactor cannot silently change a trajectory. JSON
    floats round-trip exactly (shortest-repr), so comparing a reloaded
    trace against a recomputed one is an exact check."""
    if isinstance(spec, str):
        from .registry import get_scenario

        spec = get_scenario(spec)
    compiled = compile_run(
        spec, seed=seed, total_rounds=total_rounds, preset=preset
    )
    result = compiled.execute()
    state = np.ascontiguousarray(compiled.engine.state)
    if compiled.kind == "sync":
        curve = [
            {
                "round": r.round,
                "mean_accuracy": r.mean_accuracy,
                "consensus": r.consensus,
            }
            for r in result.history.records
        ]
    else:
        curve = [
            {
                "time": r.time,
                "activations": r.activations,
                "mean_accuracy": r.mean_accuracy,
                "consensus": r.consensus,
            }
            for r in result.history.records
        ]
    return {
        "schema": TRACE_SCHEMA,
        "scenario": spec.name,
        "kind": compiled.kind,
        "seed": compiled.seed,
        "total_rounds": compiled.total_rounds,
        "final_accuracy": result.final_accuracy,
        "state_sha256": hashlib.sha256(state.tobytes()).hexdigest(),
        "curve": curve,
    }
