"""Declarative scenarios: named, validated compositions of topology,
churn, failures, energy, data skew and algorithm.

Import layering: this package sits *above* :mod:`repro.experiments`
(compilation wires scenarios into the runner), while the engines in
:mod:`repro.simulation` only ever see the plain
:class:`~repro.scenarios.churn.ChurnSchedule` duck type. The compile
layer is therefore loaded lazily — ``repro.scenarios.spec``/``churn``/
``registry`` stay importable from anywhere without dragging the full
experiments stack in.
"""

from __future__ import annotations

from .churn import ChurnSchedule, apply_join_handoff
from .registry import available_scenarios, get_scenario, register_scenario
from .spec import (
    AlgorithmSpec,
    ChurnEventSpec,
    ChurnSpec,
    DataSpec,
    EnergySpec,
    FailureSpec,
    ScenarioSpec,
    TopologySpec,
)

__all__ = [
    "ScenarioSpec",
    "TopologySpec",
    "ChurnEventSpec",
    "ChurnSpec",
    "FailureSpec",
    "EnergySpec",
    "DataSpec",
    "AlgorithmSpec",
    "ChurnSchedule",
    "apply_join_handoff",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
    # lazily loaded from .compile (heavy: pulls in the experiments stack)
    "CompiledRun",
    "compile_run",
    "run_scenario",
    "build_scenario_plan",
    "scenario_trace",
]

_LAZY = {
    "CompiledRun",
    "compile_run",
    "run_scenario",
    "build_scenario_plan",
    "scenario_trace",
}


def __getattr__(name: str) -> object:
    if name in _LAZY:
        from . import compile as _compile

        return getattr(_compile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# Built-in scenario definitions register themselves on import. This
# pulls in repro.experiments.presets (names only, no engine wiring).
from . import builtin as _builtin  # noqa: E402,F401
