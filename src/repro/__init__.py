"""repro — reproduction of *Energy-Aware Decentralized Learning with
Intermittent Model Training* (SkipTrain, IPDPS 2024).

Subpackages
-----------
``repro.core``
    The paper's contribution: round schedules, training probabilities,
    and the D-PSGD / SkipTrain / SkipTrain-constrained / Greedy family.
``repro.nn``
    From-scratch NumPy neural-network engine (PyTorch substitute).
``repro.data``
    Synthetic CIFAR-10/FEMNIST stand-ins, non-IID partitioners.
``repro.topology``
    Communication graphs and Metropolis–Hastings mixing matrices.
``repro.energy``
    Smartphone device profiles, energy traces, accounting (Eq. 2–3).
``repro.simulation``
    Synchronous round engine (serial and process-parallel).
``repro.experiments``
    Per-figure/table experiment runners and reporting.
"""

__version__ = "1.0.0"

from . import analysis, core, data, energy, nn, simulation, topology

__all__ = [
    "analysis",
    "core",
    "data",
    "energy",
    "nn",
    "simulation",
    "topology",
    "__version__",
]
