#!/usr/bin/env python
"""Asynchronous SkipTrain — the paper's §5.3 future-work direction.

No global rounds: every node runs on its own Poisson clock; on each
activation it optionally trains (its own local Γ_train/Γ_sync cycle)
and then pairwise-gossips with one random neighbor. Compares the async
analogues of D-PSGD and SkipTrain at the same activation budget.

Run:  python examples/async_gossip.py
"""

from repro.core import RoundSchedule
from repro.data import make_classification_images, shard_partition
from repro.data.synthetic import SyntheticSpec
from repro.energy import CIFAR10_WORKLOAD, build_trace
from repro.nn import small_mlp
from repro.simulation import (
    AsyncDPSGD,
    AsyncGossipEngine,
    AsyncSkipTrain,
    RngFactory,
    build_nodes,
)
from repro.topology import neighbor_lists, regular_graph

N_NODES = 16
ACTIVATIONS = 80
SEED = 7


def build_engine(rngs: RngFactory) -> AsyncGossipEngine:
    spec = SyntheticSpec(
        num_classes=10, channels=1, image_size=8,
        noise_std=2.5, jitter_std=0.6, prototype_resolution=4,
    )
    train, protos = make_classification_images(spec, 2400, rngs.stream("data"))
    test, _ = make_classification_images(
        spec, 600, rngs.stream("test"), prototypes=protos
    )
    partition = shard_partition(train.y, N_NODES, rng=rngs.stream("partition"))
    nodes = build_nodes(train, partition, batch_size=8, rngs=rngs)
    graph = regular_graph(N_NODES, 3, seed=SEED)
    model = small_mlp(64, 10, hidden=16, rng=rngs.stream("model"))
    trace = build_trace(N_NODES, CIFAR10_WORKLOAD, 0.10, degree=3)
    return AsyncGossipEngine(
        model, nodes, neighbor_lists(graph), test,
        local_steps=8, learning_rate=0.4,
        rng=rngs.stream("events"), trace=trace,
    )


def main() -> None:
    print(f"{N_NODES} nodes, Poisson activation clocks, pairwise gossip, "
          f"{ACTIVATIONS} expected activations per node\n")

    for name, policy in [
        ("async-D-PSGD", AsyncDPSGD()),
        ("async-SkipTrain (4,4)", AsyncSkipTrain(RoundSchedule(4, 4))),
    ]:
        engine = build_engine(RngFactory(SEED))
        history = engine.run(policy, activations_per_node=ACTIVATIONS)
        print(f"{name}:")
        for record in history.records:
            print(f"  t={record.time:6.1f} (event {record.activations:5d}): "
                  f"accuracy {record.mean_accuracy * 100:5.1f}%, "
                  f"consensus dist {record.consensus:8.3f}, "
                  f"train energy {record.train_energy_wh:6.2f} Wh")
        total_trains = int(engine.train_counts.sum())
        print(f"  -> {total_trains} training activations, "
              f"{engine.train_energy_wh:.2f} Wh\n")

    print("async-SkipTrain halves training energy with no global "
          "coordination — each node cycles train/sync on its own clock.")


if __name__ == "__main__":
    main()
