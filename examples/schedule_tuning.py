#!/usr/bin/env python
"""Tuning Γ_train/Γ_sync: a scaled-down version of the paper's Fig. 3
grid search, across two topology densities.

Shows the trade-off the paper optimizes in §4.3: more sync rounds cost
accuracy-per-round but save energy; the optimum shifts toward fewer
sync rounds as the topology gets denser (faster mixing needs less help).

Run:  python examples/schedule_tuning.py
"""

from repro.data.synthetic import SyntheticSpec
from repro.energy import CIFAR10_WORKLOAD
from repro.experiments import grid_search
from repro.experiments.presets import ExperimentPreset
from repro.nn import small_mlp

SEED = 11


def make_preset() -> ExperimentPreset:
    return ExperimentPreset(
        name="tuning",
        n_nodes=16,
        degrees=(3, 6),
        spec=SyntheticSpec(
            num_classes=10, channels=1, image_size=8,
            noise_std=2.5, jitter_std=0.6, prototype_resolution=4,
        ),
        num_train=2400,
        num_test=600,
        partition="shard",
        model_factory=lambda rng: small_mlp(64, 10, hidden=16, rng=rng),
        learning_rate=0.4,
        batch_size=8,
        local_steps=8,
        total_rounds=64,
        eval_every=64,
        eval_node_sample=None,
        workload=CIFAR10_WORKLOAD,
        battery_fraction=0.10,
        tuned_schedules={},
    )


def main() -> None:
    preset = make_preset()
    for degree in preset.degrees:
        result = grid_search(
            preset, degree=degree,
            train_values=(1, 2, 3, 4), sync_values=(1, 2, 3, 4),
            seed=SEED,
        )
        print(result.render())
        gt, gs = result.best()
        i = result.sync_values.index(gs)
        j = result.train_values.index(gt)
        print(f"\nbest for {degree}-regular: Γtrain={gt}, Γsync={gs} "
              f"({result.accuracy[i, j] * 100:.1f}% validation accuracy, "
              f"{result.energy_wh[i, j]:.2f} Wh)")
        print("-" * 72)

    print("\npaper's tuned values at 256 nodes: (4,4) for 6-regular, "
          "(3,3) for 8-regular, (4,2) for 10-regular — denser topologies "
          "need fewer sync rounds.")


if __name__ == "__main__":
    main()
