#!/usr/bin/env python
"""Composing SkipTrain with payload compression and privacy noise.

Three deployments of the same 16-node task:

1. plain SkipTrain,
2. SkipTrain + top-10 % error-feedback compression (§6's
   sparsification direction — shrinks the already-small communication
   energy and the bandwidth footprint),
3. SkipTrain + Muffliato-style Gaussian noise on shared models (§6's
   privacy direction — the sync rounds SkipTrain inserts for energy
   double as the gossip rounds that average the noise away).

Run:  python examples/compression_and_privacy.py
"""

import numpy as np

from repro.core import (
    GaussianMechanism,
    RoundSchedule,
    SkipTrain,
    TopKCompressor,
    noise_after_mixing,
)
from repro.data import make_classification_images, shard_partition
from repro.data.synthetic import SyntheticSpec
from repro.energy import CIFAR10_WORKLOAD, EnergyMeter, build_trace
from repro.nn import small_mlp
from repro.simulation import EngineConfig, RngFactory, SimulationEngine, build_nodes
from repro.topology import metropolis_hastings_weights, regular_graph

N_NODES = 16
TOTAL_ROUNDS = 80
SEED = 7


def build_engine(rngs: RngFactory, compressor=None) -> SimulationEngine:
    spec = SyntheticSpec(
        num_classes=10, channels=1, image_size=8,
        noise_std=2.5, jitter_std=0.6, prototype_resolution=4,
    )
    train, protos = make_classification_images(spec, 2400, rngs.stream("data"))
    test, _ = make_classification_images(
        spec, 600, rngs.stream("test"), prototypes=protos
    )
    partition = shard_partition(train.y, N_NODES, rng=rngs.stream("partition"))
    nodes = build_nodes(train, partition, batch_size=8, rngs=rngs)
    mixing = metropolis_hastings_weights(regular_graph(N_NODES, 3, seed=SEED))
    config = EngineConfig(local_steps=8, learning_rate=0.4,
                          total_rounds=TOTAL_ROUNDS, eval_every=16)
    model = small_mlp(64, 10, hidden=16, rng=rngs.stream("model"))
    meter = EnergyMeter(build_trace(N_NODES, CIFAR10_WORKLOAD, 0.10, degree=3))
    return SimulationEngine(model, nodes, mixing, config, test, meter=meter,
                            compressor=compressor)


def main() -> None:
    schedule = RoundSchedule(4, 4)

    plain = build_engine(RngFactory(SEED))
    h_plain = plain.run(SkipTrain(N_NODES, schedule))

    compressed = build_engine(RngFactory(SEED), compressor=TopKCompressor(0.1))
    h_comp = compressed.run(SkipTrain(N_NODES, schedule))

    print("deployment                  accuracy   train Wh   comm mWh")
    print("-" * 60)
    for name, hist, eng in [
        ("SkipTrain", h_plain, plain),
        ("SkipTrain + top-10%", h_comp, compressed),
    ]:
        print(f"{name:26s} {hist.final_accuracy() * 100:7.1f}% "
              f"{eng.meter.total_train_wh:9.2f} "
              f"{eng.meter.total_comm_wh * 1000:9.2f}")

    # privacy: how much of the injected noise survives the sync batch?
    mixing = metropolis_hastings_weights(regular_graph(N_NODES, 3, seed=SEED))
    mech = GaussianMechanism(sigma=0.1, rng=np.random.default_rng(SEED))
    print(f"\nprivacy mechanism: σ = {mech.sigma} Gaussian noise on every "
          f"shared model")
    for k in (0, 1, schedule.gamma_sync, 2 * schedule.gamma_sync):
        residual = noise_after_mixing(
            mixing, k, sigma=0.1, rng=np.random.default_rng(SEED)
        )
        print(f"  residual noise after {k} mixing rounds: {residual:.4f} "
              f"(floor σ/√n = {0.1 / np.sqrt(N_NODES):.4f})")

    print("\nSkipTrain's sync batches average injected noise toward the "
          "σ/√n floor — the Muffliato amplification — while compression "
          "cuts the wire cost ~8x. Both compose with the 2x training-"
          "energy saving.")


if __name__ == "__main__":
    main()
