#!/usr/bin/env python
"""SkipTrain on an unreliable network: crash/recovery churn.

The paper motivates SkipTrain with battery-limited IoT/UAV fleets
(§1) — devices that also drop offline. This example injects two kinds
of failures and shows the training survives: dead nodes freeze (no
training, no radio, no energy spend), survivors keep mixing with
Metropolis–Hastings weights recomputed on the alive subgraph (still
doubly stochastic, so D-PSGD's convergence conditions hold round by
round).

Run:  python examples/unreliable_network.py
"""

import numpy as np

from repro.core import RoundSchedule, SkipTrain
from repro.data import make_classification_images, shard_partition
from repro.data.synthetic import SyntheticSpec
from repro.energy import CIFAR10_WORKLOAD, EnergyMeter, build_trace
from repro.nn import small_mlp
from repro.simulation import (
    CrashWindow,
    EngineConfig,
    IndependentCrashes,
    NoFailures,
    RngFactory,
    SimulationEngine,
    build_nodes,
    failure_mixing_provider,
)
from repro.topology import regular_graph

N_NODES = 16
TOTAL_ROUNDS = 80
SEED = 7


def run(failure_model, label: str) -> None:
    rngs = RngFactory(SEED)
    spec = SyntheticSpec(
        num_classes=10, channels=1, image_size=8,
        noise_std=2.5, jitter_std=0.6, prototype_resolution=4,
    )
    train, protos = make_classification_images(spec, 2400, rngs.stream("data"))
    test, _ = make_classification_images(
        spec, 600, rngs.stream("test"), prototypes=protos
    )
    partition = shard_partition(train.y, N_NODES, rng=rngs.stream("partition"))
    nodes = build_nodes(train, partition, batch_size=8, rngs=rngs)
    graph = regular_graph(N_NODES, 4, seed=SEED)
    config = EngineConfig(local_steps=8, learning_rate=0.4,
                          total_rounds=TOTAL_ROUNDS, eval_every=16)
    model = small_mlp(64, 10, hidden=16, rng=rngs.stream("model"))
    meter = EnergyMeter(build_trace(N_NODES, CIFAR10_WORKLOAD, 0.10, degree=4))
    engine = SimulationEngine(
        model, nodes, failure_mixing_provider(graph, failure_model),
        config, test, meter=meter, failure_model=failure_model,
    )
    history = engine.run(SkipTrain(N_NODES, RoundSchedule(4, 4)))
    final = history.final_accuracy()
    print(f"{label:42s} accuracy {final * 100:5.1f}%  "
          f"energy {meter.total_train_wh:5.2f} Wh  "
          f"(node train-rounds: min {meter.train_rounds.min()}, "
          f"max {meter.train_rounds.max()})")


def main() -> None:
    print(f"SkipTrain(4,4), {N_NODES} nodes, 4-regular, "
          f"{TOTAL_ROUNDS} rounds\n")
    run(NoFailures(N_NODES), "no failures")
    run(
        IndependentCrashes(N_NODES, 0.15, np.random.default_rng(SEED)),
        "15% independent churn per round",
    )
    run(
        CrashWindow(N_NODES, nodes=[0, 1, 2, 3], start=20, end=60),
        "4 nodes offline for rounds 20-60",
    )
    print("\ndead nodes freeze and spend nothing; survivors keep mixing — "
          "training degrades gracefully instead of failing.")


if __name__ == "__main__":
    main()
