#!/usr/bin/env python
"""Topology study: how graph structure drives the value of sync rounds.

Runs SkipTrain on four topologies with very different mixing properties
(ring, torus, random regular, fully-connected) and relates the accuracy
benefit of synchronization rounds to the spectral gap of the mixing
matrix — the quantity behind the paper's §4.3 intuition.

Run:  python examples/topology_study.py
"""

from repro.core import DPSGD, RoundSchedule, SkipTrain
from repro.data import make_classification_images, shard_partition
from repro.data.synthetic import SyntheticSpec
from repro.nn import small_mlp
from repro.simulation import EngineConfig, RngFactory, SimulationEngine, build_nodes
from repro.topology import (
    fully_connected_graph,
    metropolis_hastings_weights,
    mixing_time_estimate,
    regular_graph,
    ring_graph,
    spectral_gap,
    torus_graph,
)

N_NODES = 16
SEED = 7

TOPOLOGIES = {
    "ring (deg 2)": lambda: ring_graph(N_NODES),
    "torus 4x4 (deg 4)": lambda: torus_graph(4, 4),
    "random 6-regular": lambda: regular_graph(N_NODES, 6, seed=SEED),
    "fully connected": lambda: fully_connected_graph(N_NODES),
}


def run(mixing, algorithm, rngs):
    spec = SyntheticSpec(
        num_classes=10, channels=1, image_size=8,
        noise_std=2.5, jitter_std=0.6, prototype_resolution=4,
    )
    train, protos = make_classification_images(spec, 2400, rngs.stream("data"))
    test, _ = make_classification_images(
        spec, 600, rngs.stream("test"), prototypes=protos
    )
    partition = shard_partition(train.y, N_NODES, rng=rngs.stream("partition"))
    nodes = build_nodes(train, partition, batch_size=8, rngs=rngs)
    config = EngineConfig(local_steps=8, learning_rate=0.4,
                          total_rounds=64, eval_every=64)
    model = small_mlp(64, 10, hidden=16, rng=rngs.stream("model"))
    engine = SimulationEngine(model, nodes, mixing, config, test)
    return engine.run(algorithm).final_accuracy()


def main() -> None:
    print(f"{'topology':20s} {'gap':>6s} {'t_mix':>6s} "
          f"{'D-PSGD':>8s} {'SkipTrain':>10s} {'Δacc':>7s} {'energy':>7s}")
    print("-" * 70)
    for name, make_graph in TOPOLOGIES.items():
        mixing = metropolis_hastings_weights(make_graph())
        gap = spectral_gap(mixing)
        tmix = mixing_time_estimate(mixing)
        acc_d = run(mixing, DPSGD(N_NODES), RngFactory(SEED))
        acc_s = run(mixing, SkipTrain(N_NODES, RoundSchedule(4, 4)),
                    RngFactory(SEED))
        print(f"{name:20s} {gap:6.3f} {tmix:6.1f} "
              f"{acc_d * 100:7.1f}% {acc_s * 100:9.1f}% "
              f"{(acc_s - acc_d) * 100:+6.1f}pp    0.5x")

    print("\nSkipTrain spends half the training energy on every topology; "
          "the slowest-mixing graph (smallest spectral gap) shows the "
          "largest accuracy gain from its synchronization rounds, while "
          "fast-mixing graphs train well either way.")


if __name__ == "__main__":
    main()
