#!/usr/bin/env python
"""Energy-constrained IoT fleet: SkipTrain-constrained vs Greedy vs D-PSGD.

Models the paper's motivating scenario (§1, §3.2): a fleet of
battery-powered smartphones that can each afford only τᵢ training
rounds before depleting their training energy allotment. Devices are
the paper's four phones (Table 2), assigned round-robin; budgets come
from the battery-fraction rule of §4.2.

The script prints each node's device, budget, and how each algorithm
spends it — then the accuracy all three reach at the same total energy.

Run:  python examples/iot_battery_fleet.py
"""

import numpy as np

from repro.experiments import prepare, run_algorithm
from repro.experiments.presets import ExperimentPreset
from repro.data.synthetic import SyntheticSpec
from repro.energy import CIFAR10_WORKLOAD
from repro.nn import small_mlp

N_NODES = 16
SEED = 7


def make_preset() -> ExperimentPreset:
    return ExperimentPreset(
        name="iot-fleet",
        n_nodes=N_NODES,
        degrees=(3,),
        spec=SyntheticSpec(
            num_classes=10, channels=1, image_size=8,
            noise_std=2.5, jitter_std=0.6, prototype_resolution=4,
        ),
        num_train=2400,
        num_test=600,
        partition="shard",
        model_factory=lambda rng: small_mlp(64, 10, hidden=16, rng=rng),
        learning_rate=0.4,
        batch_size=8,
        local_steps=8,
        total_rounds=80,
        eval_every=8,
        eval_node_sample=None,
        workload=CIFAR10_WORKLOAD,
        battery_fraction=0.0074,  # τ ≈ half of T_train, as in the paper
        tuned_schedules={3: (4, 4)},
    )


def main() -> None:
    preset = make_preset()
    prepared = prepare(preset, degree=3, seed=SEED)

    print("fleet composition (budgets per §4.2's battery rule):")
    for i in (0, 1, 2, 3):
        dev = prepared.trace.devices[i]
        tau = prepared.trace.budget_rounds[i]
        per_round = prepared.trace.train_energy_wh[i] * 1000
        print(f"  node {i}: {dev.name:26s} {per_round:5.2f} mWh/round, "
              f"budget τ = {tau} rounds")
    print(f"  ... ({N_NODES} nodes total, devices repeat round-robin)\n")

    results = {}
    for name in ["skiptrain-constrained", "greedy", "d-psgd"]:
        eval_every = 2 if name == "d-psgd" else None
        results[name] = run_algorithm(prepared, name, eval_every=eval_every)

    constrained = results["skiptrain-constrained"]
    greedy = results["greedy"]
    dpsgd = results["d-psgd"]

    print("training rounds actually executed per node:")
    print(f"  budgets τ:            {prepared.trace.budget_rounds.tolist()}")
    print(f"  SkipTrain-constrained: {constrained.meter.train_rounds.tolist()}")
    print(f"  Greedy:                {greedy.meter.train_rounds.tolist()}")
    print(f"  D-PSGD (unbounded):    {dpsgd.meter.train_rounds.tolist()}\n")

    budget = max(constrained.meter.total_wh, greedy.meter.total_wh)
    print(f"accuracy at the shared energy budget ({budget:.2f} Wh):")
    for name, res in [("SkipTrain-constrained", constrained),
                      ("Greedy", greedy), ("D-PSGD", dpsgd)]:
        acc = res.history.accuracy_at_energy(budget)
        print(f"  {name:22s} {acc * 100:5.1f}%")

    assert (constrained.meter.train_rounds
            <= prepared.trace.budget_rounds).all(), "budget violated!"
    print("\nno node exceeded its battery budget "
          "(paper: constrained > Greedy > D-PSGD, by up to +12 pp).")


if __name__ == "__main__":
    main()
