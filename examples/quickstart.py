#!/usr/bin/env python
"""Quickstart: train a decentralized model with SkipTrain vs D-PSGD.

Builds a 16-node network on a 3-regular topology, partitions a synthetic
CIFAR-10-like dataset with the paper's 2-shard non-IID scheme, and runs
both algorithms for 80 rounds, printing accuracy and energy side by side.

Run:  python examples/quickstart.py
"""

from repro.core import DPSGD, RoundSchedule, SkipTrain
from repro.data import make_classification_images, shard_partition
from repro.data.synthetic import SyntheticSpec
from repro.energy import CIFAR10_WORKLOAD, EnergyMeter, build_trace
from repro.nn import small_mlp
from repro.simulation import EngineConfig, RngFactory, SimulationEngine, build_nodes
from repro.topology import metropolis_hastings_weights, regular_graph

N_NODES = 16
TOTAL_ROUNDS = 80
SEED = 7


def build_engine(rngs: RngFactory) -> SimulationEngine:
    """Wire data, topology, energy and the round engine together."""
    spec = SyntheticSpec(
        num_classes=10, channels=1, image_size=8,
        noise_std=2.5, jitter_std=0.6, prototype_resolution=4,
    )
    train, protos = make_classification_images(spec, 2400, rngs.stream("data"))
    test, _ = make_classification_images(
        spec, 600, rngs.stream("test"), prototypes=protos
    )

    # the paper's 2-shard non-IID partition: ~2 classes per node
    partition = shard_partition(train.y, N_NODES, rng=rngs.stream("partition"))
    nodes = build_nodes(train, partition, batch_size=8, rngs=rngs)

    graph = regular_graph(N_NODES, 3, seed=SEED)
    mixing = metropolis_hastings_weights(graph)

    # vectorized=True batches all nodes' local SGD steps into stacked
    # GEMMs — bit-identical results to the serial loop, several times
    # the rounds/sec (see benchmarks/test_engine_throughput.py).
    config = EngineConfig(
        local_steps=8, learning_rate=0.4,
        total_rounds=TOTAL_ROUNDS, eval_every=16,
        vectorized=True,
    )
    model = small_mlp(64, 10, hidden=16, rng=rngs.stream("model"))
    meter = EnergyMeter(build_trace(N_NODES, CIFAR10_WORKLOAD, 0.10, degree=3))
    return SimulationEngine(model, nodes, mixing, config, test, meter=meter)


def main() -> None:
    print(f"{N_NODES} nodes, 3-regular topology, 2-shard non-IID, "
          f"{TOTAL_ROUNDS} rounds\n")

    results = {}
    for name, algorithm in [
        ("D-PSGD", DPSGD(N_NODES)),
        ("SkipTrain", SkipTrain(N_NODES, RoundSchedule(4, 4))),
    ]:
        engine = build_engine(RngFactory(SEED))
        history = engine.run(algorithm)
        results[name] = (history, engine.meter)
        print(f"{name}:")
        for record in history.records:
            print(f"  round {record.round:3d}: "
                  f"accuracy {record.mean_accuracy * 100:5.1f}% "
                  f"(±{record.std_accuracy * 100:4.1f}), "
                  f"energy {record.cumulative_energy_wh:6.2f} Wh")
        print()

    dpsgd_hist, dpsgd_meter = results["D-PSGD"]
    skip_hist, skip_meter = results["SkipTrain"]
    ratio = dpsgd_meter.total_train_wh / skip_meter.total_train_wh
    gain = (skip_hist.final_accuracy() - dpsgd_hist.final_accuracy()) * 100
    print(f"SkipTrain used {ratio:.1f}x less training energy "
          f"and changed accuracy by {gain:+.1f} pp "
          f"(paper: 2x less energy, up to +7 pp).")


if __name__ == "__main__":
    main()
