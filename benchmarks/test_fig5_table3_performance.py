"""Figure 5 / Table 3 bench: SkipTrain vs D-PSGD across topologies and
both datasets.

Paper shapes checked:

* SkipTrain consumes ≈½ the training energy of D-PSGD at equal T
  (Γ=(k,k) schedules; the (4,2) 10-regular analogue consumes ⅔);
* CIFAR-like (2-shard): SkipTrain clearly more accurate;
* FEMNIST-like (writer): SkipTrain matches D-PSGD's accuracy
  (within noise) at half the energy.
"""

import pytest

from repro.experiments import table3

from .conftest import run_once


def test_table3_cifar(benchmark, bench16_cifar):
    result = run_once(benchmark, lambda: table3(bench16_cifar, seed=11))

    print("\n" + result.render())
    for deg in bench16_cifar.degrees:
        print(f"degree {deg}: energy ratio {result.energy_ratio(deg):.2f}x "
              f"(paper: 2.0/2.0/1.5), accuracy gain "
              f"{result.accuracy_gain(deg):+.1f} pp (paper: +7.5/+5.9/+4.8)")

    for deg, expected_ratio in zip(bench16_cifar.degrees, (2.0, 2.0, 1.5)):
        assert result.energy_ratio(deg) == pytest.approx(expected_ratio, rel=0.05)
    # SkipTrain at least matches D-PSGD on the sharded dataset
    for deg in bench16_cifar.degrees:
        assert result.accuracy_gain(deg) > -1.0
    # and clearly wins on the sparsest topology
    assert result.accuracy_gain(bench16_cifar.degrees[0]) > 1.0


def test_table3_femnist(benchmark, bench16_femnist):
    result = run_once(benchmark, lambda: table3(bench16_femnist, seed=11))

    print("\n" + result.render())
    for deg in bench16_femnist.degrees:
        print(f"degree {deg}: energy ratio {result.energy_ratio(deg):.2f}x, "
              f"accuracy gain {result.accuracy_gain(deg):+.1f} pp "
              f"(paper: ≈ +0.6, near-tie)")

    for deg, expected_ratio in zip(bench16_femnist.degrees, (2.0, 2.0, 1.5)):
        assert result.energy_ratio(deg) == pytest.approx(expected_ratio, rel=0.05)
    # writer-partitioned data: near-tie, SkipTrain within 4 pp of D-PSGD
    for deg in bench16_femnist.degrees:
        assert result.accuracy_gain(deg) > -4.0


@pytest.mark.slow
def test_table3_cifar_full_bench_scale(benchmark, bench32_cifar):
    """The 32-node version of the headline table (slower, sharper)."""
    result = run_once(benchmark, lambda: table3(bench32_cifar, seed=0))
    print("\n" + result.render())
    assert result.energy_ratio(bench32_cifar.degrees[0]) == pytest.approx(
        2.0, rel=0.05
    )
    assert result.accuracy_gain(bench32_cifar.degrees[0]) > 2.0
