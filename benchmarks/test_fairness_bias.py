"""§5.1 bias bench: measure the device-capacity bias the paper flags as
future work.

Shapes checked:

* SkipTrain (unconstrained) has perfectly equal participation
  (Gini = 0); SkipTrain-constrained concentrates participation on
  high-budget devices (Gini > 0);
* under the constrained algorithm, the highest-budget device group
  trains the most rounds.
"""

from repro.experiments import fairness_study

from .conftest import run_once


def test_fairness_device_bias(benchmark, bench16_cifar):
    result = run_once(benchmark, lambda: fairness_study(bench16_cifar, seed=11))

    print("\n" + result.render())

    assert result.gini["skiptrain"] == 0.0, (
        "unconstrained SkipTrain trains every node equally"
    )
    assert result.gini["skiptrain-constrained"] > 0.05, (
        "budget-driven skipping must concentrate participation"
    )

    constrained = result.reports["skiptrain-constrained"]
    # the OnePlus Nord (largest budget) trains the most
    by_rounds = dict(zip(constrained.device_names, constrained.train_rounds))
    assert by_rounds["OnePlus Nord 2 5G"] == max(by_rounds.values())

    print(f"\nGini — SkipTrain: {result.gini['skiptrain']:.3f}, "
          f"constrained: {result.gini['skiptrain-constrained']:.3f}")
    print(f"local-accuracy spread under constrained participation: "
          f"{constrained.accuracy_spread() * 100:.1f} pp "
          f"(the §5.1 fairness gap)")
