"""Figure 4 bench: the train/sync accuracy oscillation.

Paper shape: evaluated every round near convergence, SkipTrain's test
accuracy rises during synchronization rounds and falls during training
rounds, while the inter-node standard deviation does the opposite.
"""

from repro.experiments import figure4

from .conftest import run_once


def test_fig4_train_sync_oscillation(benchmark, bench16_cifar):
    result = run_once(
        benchmark, lambda: figure4(bench16_cifar, seed=11, window=24)
    )

    print("\n" + result.render())
    print(f"\nsync-vs-train accuracy contrast: "
          f"{result.oscillation_contrast() * 100:+.1f} pp (paper: positive sawtooth)")
    print(f"train-vs-sync std contrast: {result.std_contrast() * 100:+.1f} pp "
          f"(paper: sync shrinks the std band)")

    assert result.oscillation_contrast() > 0.0, (
        "accuracy must be higher after sync rounds than after train rounds"
    )
    assert result.std_contrast() > 0.0, (
        "inter-node disagreement must be lower after sync rounds"
    )
