"""Ablation bench: coordinated sync batches vs uniformly random
skipping at the same training fraction.

SkipTrain coordinates *when* everyone skips (whole synchronization
rounds); an alternative spends the same training budget by letting each
node flip an independent coin every round. The coordinated schedule
gets consecutive mixing steps (contraction λ₂^Γsync) while random
skipping never has a training-silent round. DESIGN.md §5 item 2.
"""

import numpy as np
import pytest

from repro.core import RoundSchedule
from repro.core.base import Algorithm
from repro.experiments import prepare, run_algorithm

from .conftest import run_once


class RandomSkip(Algorithm):
    """Every node independently trains with probability ``p`` each round
    (same expected training volume as SkipTrain with fraction p)."""

    name = "random-skip"

    def __init__(self, n_nodes: int, p: float, rng: np.random.Generator):
        super().__init__(n_nodes)
        self.p = p
        self.rng = rng

    def train_mask(self, t: int) -> np.ndarray:
        return self.rng.random(self.n_nodes) < self.p


def test_schedule_ablation_coordinated_vs_random(benchmark, bench16_cifar):
    def compute():
        prepared = prepare(bench16_cifar, 3, seed=11)
        schedule = RoundSchedule(4, 4)
        coordinated = run_algorithm(prepared, "skiptrain", schedule=schedule)
        random = run_algorithm(
            prepared,
            RandomSkip(bench16_cifar.n_nodes, schedule.training_fraction(),
                       np.random.default_rng(0)),
        )
        return coordinated, random

    coordinated, random = run_once(benchmark, compute)

    acc_c = coordinated.history.final_accuracy()
    acc_r = random.history.final_accuracy()
    e_c = coordinated.meter.total_train_wh
    e_r = random.meter.total_train_wh
    print(f"\ncoordinated: {acc_c * 100:.1f}% @ {e_c:.2f} Wh")
    print(f"random skip: {acc_r * 100:.1f}% @ {e_r:.2f} Wh")

    # same training volume (within binomial noise)…
    assert e_r == pytest.approx(e_c, rel=0.2)
    # …but coordination should not hurt: SkipTrain's sync batches give
    # it the contraction advantage the paper's design banks on
    assert acc_c >= acc_r - 0.03
