"""Ablation bench: static vs randomized (per-round) topology.

The paper's reference [54] (Epidemic Learning) shows randomized
communication beats a fixed graph of equal degree. This bench verifies
the mixing-level mechanism (faster consensus contraction) and that
SkipTrain composes with a dynamic topology unchanged — its energy
saving is schedule-level, independent of who talks to whom.
"""

import numpy as np
import pytest

from repro.core import RoundSchedule, SkipTrain
from repro.energy.accounting import EnergyMeter
from repro.experiments import prepare
from repro.simulation import (
    EngineConfig,
    RngFactory,
    SimulationEngine,
    build_nodes,
    consensus_distance,
)
from repro.topology import RandomRegularEachRound, metropolis_hastings_weights, regular_graph

from .conftest import run_once


def test_dynamic_topology_ablation(benchmark, bench16_cifar):
    def compute():
        # mixing-level comparison
        n, d, rounds = 24, 3, 15
        rng = np.random.default_rng(0)
        x0 = rng.normal(size=(n, 64))
        static_w = metropolis_hastings_weights(regular_graph(n, d, seed=0))
        x = x0.copy()
        for _ in range(rounds):
            x = static_w @ x
        static_dist = consensus_distance(x)
        provider = RandomRegularEachRound(n, d, seed=0)
        x = x0.copy()
        for t in range(1, rounds + 1):
            x = provider(t) @ x
        dynamic_dist = consensus_distance(x)

        # end-to-end: SkipTrain on static vs dynamic graph
        prepared = prepare(bench16_cifar, 3, seed=11)
        preset = prepared.preset

        def run(mixing):
            rngs = RngFactory(11)
            cfg = EngineConfig(
                local_steps=preset.local_steps,
                learning_rate=preset.learning_rate,
                total_rounds=preset.total_rounds,
                eval_every=preset.total_rounds,
            )
            model = preset.model_factory(rngs.stream("model"))
            nodes = build_nodes(prepared.train, prepared.partition,
                                preset.batch_size, rngs)
            meter = EnergyMeter(prepared.trace)
            eng = SimulationEngine(model, nodes, mixing, cfg, prepared.test,
                                   meter=meter)
            h = eng.run(SkipTrain(preset.n_nodes, RoundSchedule(4, 4)))
            return h.final_accuracy(), meter.total_train_wh

        acc_static, e_static = run(prepared.mixing)
        acc_dynamic, e_dynamic = run(
            RandomRegularEachRound(preset.n_nodes, 3, seed=11)
        )
        return static_dist, dynamic_dist, acc_static, acc_dynamic, e_static, e_dynamic

    (static_dist, dynamic_dist, acc_static, acc_dynamic,
     e_static, e_dynamic) = run_once(benchmark, compute)

    print(f"\nconsensus distance after 15 mixing rounds — "
          f"static: {static_dist:.4f}, dynamic: {dynamic_dist:.4f}")
    print(f"SkipTrain accuracy — static graph: {acc_static * 100:.1f}%, "
          f"dynamic graph: {acc_dynamic * 100:.1f}%")

    # randomized topology mixes strictly faster
    assert dynamic_dist < static_dist
    # energy identical: the schedule, not the topology, sets the bill
    assert e_dynamic == pytest.approx(e_static)
    # dynamic topology does not hurt SkipTrain
    assert acc_dynamic > acc_static - 0.05
