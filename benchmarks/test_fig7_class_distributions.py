"""Figure 7 bench: class distributions under the two partition schemes.

Paper shape: the 2-shard CIFAR partition gives most nodes ≤2-3 labels
(severe label skew); the writer-based FEMNIST partition gives every
node nearly the full label set (mild label skew), which is why the
SkipTrain-vs-D-PSGD gap is larger on CIFAR.
"""


from repro.data import heterogeneity_score, partition_datasets
from repro.experiments import figure7, prepare

from .conftest import run_once


def test_fig7_class_distributions(benchmark, bench16_cifar, bench16_femnist):
    result = run_once(
        benchmark, lambda: figure7(bench16_cifar, bench16_femnist, seed=11)
    )

    print("\n" + result.render())

    shard_labels = (result.shard_matrix > 0).sum(axis=1)
    writer_labels = (result.writer_matrix > 0).sum(axis=1)
    print(f"\nlabels per node — shard: mean {shard_labels.mean():.1f} "
          f"(of {result.shard_matrix.shape[1]}), "
          f"writer: mean {writer_labels.mean():.1f} "
          f"(of {result.writer_matrix.shape[1]})")

    # severe skew for shards, mild for writers
    assert shard_labels.mean() <= 4.0
    assert writer_labels.mean() >= 0.75 * result.writer_matrix.shape[1]

    # every sample is assigned exactly once
    assert result.shard_matrix.sum() == bench16_cifar.num_train


def test_fig7_heterogeneity_ordering(benchmark, bench16_cifar, bench16_femnist):
    """Quantified version: TV-distance heterogeneity of shard ≫ writer."""

    def compute():
        shard_prep = prepare(bench16_cifar, 3, seed=11)
        writer_prep = prepare(bench16_femnist, 3, seed=11)
        shard = heterogeneity_score(
            partition_datasets(shard_prep.train, shard_prep.partition)
        )
        writer = heterogeneity_score(
            partition_datasets(writer_prep.train, writer_prep.partition)
        )
        return shard, writer

    shard, writer = run_once(benchmark, compute)
    print(f"\nheterogeneity (TV distance): shard {shard:.3f}, writer {writer:.3f}")
    assert shard > 2 * writer
