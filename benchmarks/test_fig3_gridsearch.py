"""Figure 3 bench: the Γ_train × Γ_sync grid search.

Paper shapes checked:

* the energy panel depends only on T_train — column-monotone in Γ_train
  and row-monotone in Γ_sync, identical across topologies;
* (Γ_train=1, Γ_sync=4) is the cheapest configuration in the grid;
* the measured energy grid equals the closed-form Eq. 4 prediction.
"""

import numpy as np
import pytest

from repro.experiments import energy_grid, grid_search

from .conftest import run_once

GRID = (1, 2, 3, 4)


@pytest.mark.slow
def test_fig3_gridsearch(benchmark, bench16_cifar):
    """Full 4×4 grid on the sparse topology (the paper's 6-regular
    analogue), plus the analytic energy panel."""

    def compute():
        return grid_search(
            bench16_cifar, degree=3, train_values=GRID, sync_values=GRID,
            seed=11, total_rounds=64,
        )

    result = run_once(benchmark, compute)

    print("\n" + result.render())
    gt, gs = result.best()
    print(f"\nbest (Γtrain, Γsync) on the sparse topology: ({gt}, {gs}) "
          f"(paper, 6-regular: (4, 4))")

    # energy grid: measured == analytic closed form
    analytic = energy_grid(bench16_cifar, train_values=GRID,
                           sync_values=GRID, total_rounds=64)
    np.testing.assert_allclose(result.energy_wh, analytic, rtol=1e-9)

    # energy monotone: more training => more energy, more sync => less
    for i in range(len(GRID)):
        assert (np.diff(result.energy_wh[i]) > 0).all()
    for j in range(len(GRID)):
        assert (np.diff(result.energy_wh[:, j]) < 0).all()

    # cheapest cell is Γtrain=1, Γsync=4 (§4.3's 302 Wh corner)
    assert result.energy_wh.argmin() == result.energy_wh.shape[1] * (len(GRID) - 1)

    # sync rounds help on the sparse graph: the best cell beats the
    # no-sync-est corner (Γsync=1, Γtrain=4)
    assert result.accuracy.max() >= result.accuracy[0, -1]


def test_fig3_optimal_sync_decreases_with_degree(benchmark, bench16_cifar):
    """§4.3's intuition: denser topologies need fewer sync rounds.
    Checked as: the accuracy *cost* of cutting Γ_sync from 4 to 1 (at
    Γ_train=4) shrinks as the degree grows."""

    def compute():
        out = {}
        for degree in (3, 6):
            res = grid_search(
                bench16_cifar, degree=degree, train_values=(4,),
                sync_values=(1, 4), seed=11, total_rounds=64,
            )
            # accuracy[sync=4] - accuracy[sync=1]
            out[degree] = res.accuracy[1, 0] - res.accuracy[0, 0]
        return out

    gains = run_once(benchmark, compute)
    print(f"\naccuracy gain of Γsync 1→4 at degree 3: {gains[3] * 100:+.1f} pp")
    print(f"accuracy gain of Γsync 1→4 at degree 6: {gains[6] * 100:+.1f} pp")
    print("(paper: sparser topology benefits more from extra sync rounds)")
    assert gains[3] > gains[6] - 0.02
