"""Benchmark: full-tree ``repro check`` runtime.

The linter runs on every CI push and in the pre-commit hook, so its
wall-clock cost is a budget worth tracking. Records ``check_runtime_s``
into ``BENCH_throughput.json`` and asserts the committed tree is clean —
the same gate CI enforces, measured instead of just passed.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.statics import all_rules, check_paths

from .conftest import record_bench

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def test_check_runtime():
    # warm-up: rule registration, fixture-free parse of the whole tree
    check_paths([SRC], root=REPO_ROOT)

    best = float("inf")
    result = None
    for _ in range(3):
        t0 = time.perf_counter()
        result = check_paths([SRC], root=REPO_ROOT)
        best = min(best, time.perf_counter() - t0)

    record_bench("check_runtime_s", {
        "seconds": round(best, 4),
        "files": result.files_checked,
        "findings": len(result.findings),
        "suppressed": len(result.suppressed),
        "rules": len(all_rules()),
    })
    assert result.findings == [], [f.render() for f in result.findings]
    # a full AST pass over ~100 modules should stay interactive
    assert best < 30.0, f"repro check took {best:.1f}s on src/"
