"""Extension bench: the energy–accuracy Pareto frontier behind Fig. 3.

The paper picks one (Γ_train, Γ_sync) winner per topology; the full
grid defines a frontier a deployer can pick from given an energy
target. Shapes checked: the frontier spans from the cheapest schedule
(Γt=1, Γs=4) to the most accurate one, and D-PSGD (Γs=0, i.e. maximal
energy) never improves on the frontier's best accuracy.
"""

import numpy as np
import pytest

from repro.analysis import frontier_from_grid
from repro.experiments import grid_search, prepare, run_algorithm

from .conftest import run_once


@pytest.mark.slow
def test_pareto_frontier(benchmark, bench16_cifar):
    def compute():
        grid = grid_search(
            bench16_cifar, degree=3, train_values=(1, 2, 3, 4),
            sync_values=(1, 2, 3, 4), seed=11, total_rounds=64,
        )
        frontier = frontier_from_grid(grid)
        prepared = prepare(bench16_cifar, 3, seed=11)
        dpsgd = run_algorithm(prepared, "d-psgd", total_rounds=64)
        return grid, frontier, dpsgd

    grid, frontier, dpsgd = run_once(benchmark, compute)

    print("\nenergy–accuracy Pareto frontier (Γ grid, 3-regular):")
    for p in frontier:
        print(f"  {p.label:10s} {p.energy_wh:6.2f} Wh  {p.accuracy * 100:5.1f}%")
    print(f"  D-PSGD     {dpsgd.meter.total_train_wh:6.2f} Wh  "
          f"{dpsgd.history.final_accuracy() * 100:5.1f}%")

    energies = np.array([p.energy_wh for p in frontier])
    accs = np.array([p.accuracy for p in frontier])

    # frontier includes the globally cheapest schedule
    assert energies.min() == grid.energy_wh.min()
    # frontier is monotone: more energy on the frontier buys accuracy
    order = np.argsort(energies)
    assert (np.diff(accs[order]) >= -1e-12).all()
    # D-PSGD spends more energy than any frontier point without beating
    # the frontier's best accuracy — the paper's headline, frontier form
    assert dpsgd.meter.total_train_wh > energies.max()
    assert dpsgd.history.final_accuracy() <= accs.max() + 0.02
