"""Engine microbenchmarks: the per-round costs that determine how far
the simulator scales (these are true multi-round pytest benchmarks, not
one-shot experiment regenerations).

The ``test_rounds_*`` family measures whole-engine throughput
(rounds/sec) for the serial, vectorized and block-parallel engines at
16/64/256 nodes — the speedup the batched multi-node path exists to
deliver. ``test_vectorized_speedup_at_64_nodes`` turns the headline
claim into an assertion rather than a printout.
"""

import time

import numpy as np
import pytest

from repro.core import DPSGD
from repro.data import make_classification_images
from repro.data.synthetic import SyntheticSpec
from repro.nn import CrossEntropyLoss, SGD, gn_lenet_cifar10, small_mlp
from repro.nn.serialization import parameter_vector, set_parameter_vector
from repro.simulation import EngineConfig, build_engine

from .conftest import run_once

SPEC = SyntheticSpec(num_classes=10, channels=1, image_size=8,
                     noise_std=2.0, prototype_resolution=4)


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(0)
    ds, _ = make_classification_images(SPEC, 64, rng)
    return ds.x[:32], ds.y[:32]


def test_local_sgd_step_small_mlp(benchmark, batch):
    """One local training step of the bench model (forward+backward+update)."""
    model = small_mlp(64, 10, hidden=24, rng=np.random.default_rng(0))
    loss = CrossEntropyLoss()
    opt = SGD(model.parameters(), lr=0.1)
    x, y = batch

    def step():
        logits = model(x)
        loss.forward(logits, y)
        model.zero_grad()
        model.backward(loss.backward())
        opt.step()

    benchmark(step)


def test_local_sgd_step_paper_cnn(benchmark):
    """One local step of the paper's 89 834-param GN-LeNet on a real
    32-sample CIFAR-shaped batch — the paper-scale per-step cost."""
    rng = np.random.default_rng(0)
    model = gn_lenet_cifar10(rng=rng)
    loss = CrossEntropyLoss()
    opt = SGD(model.parameters(), lr=0.1)
    x = rng.normal(size=(32, 3, 32, 32))
    y = rng.integers(0, 10, size=32)

    def step():
        logits = model(x)
        loss.forward(logits, y)
        model.zero_grad()
        model.backward(loss.backward())
        opt.step()

    benchmark(step)


def test_parameter_vector_roundtrip(benchmark):
    """Serialize + deserialize the paper CNN's parameters — the per-node
    cost of entering/leaving the shared state matrix each round."""
    model = gn_lenet_cifar10(rng=np.random.default_rng(0))
    buf = np.empty(model.num_parameters())

    def roundtrip():
        parameter_vector(model, out=buf)
        set_parameter_vector(model, buf)

    benchmark(roundtrip)


# -- whole-engine throughput: serial vs vectorized vs block-parallel ----------

ENGINE_ROUNDS = 10


def _mlp_factory(rng: np.random.Generator):
    return small_mlp(64, 10, hidden=16, rng=rng)


def _throughput_engine(n_nodes: int, *, vectorized: bool = False,
                       parallel: bool = False, rounds: int = ENGINE_ROUNDS):
    """Bench-model engine sized so per-round training dominates: a tiny
    test set keeps the (identical-cost) final evaluation negligible."""
    cfg = EngineConfig(local_steps=8, learning_rate=0.2, total_rounds=rounds,
                       eval_every=10_000, vectorized=vectorized)
    return build_engine(SPEC, n_nodes, cfg, _mlp_factory, seed=0,
                        num_train=40 * n_nodes, num_test=32, batch_size=8,
                        parallel=parallel, processes=4)


@pytest.mark.parametrize("n_nodes", [16, 64, 256])
def test_rounds_serial(benchmark, n_nodes):
    """Per-node Python loop: the baseline the batched engine is measured
    against."""
    eng = _throughput_engine(n_nodes)
    run_once(benchmark, lambda: eng.run(DPSGD(n_nodes)))


@pytest.mark.parametrize("n_nodes", [16, 64, 256])
def test_rounds_vectorized(benchmark, n_nodes):
    """Batched multi-node engine: stacked GEMMs over all masked nodes."""
    eng = _throughput_engine(n_nodes, vectorized=True)
    run_once(benchmark, lambda: eng.run(DPSGD(n_nodes)))


@pytest.mark.slow
@pytest.mark.parametrize("n_nodes", [16, 64, 256])
def test_rounds_parallel_vectorized(benchmark, n_nodes):
    """Block-parallel engine with vectorized workers: the two speedups
    compose (4 workers × stacked blocks). For these tiny bench models
    IPC dominates — the case exists to track the composition overhead,
    not to win."""
    with _throughput_engine(n_nodes, vectorized=True, parallel=True) as eng:
        run_once(benchmark, lambda: eng.run(DPSGD(n_nodes)))


@pytest.mark.slow
def test_vectorized_speedup_at_64_nodes():
    """Acceptance gate: the vectorized engine must deliver at least 2x
    the serial engine's rounds/sec at 64 nodes (observed: ~4x). Best of
    three timed windows per engine so a scheduler stall on a loaded
    machine cannot sink an otherwise-green run; carries the ``slow``
    marker so quick `-m "not slow"` iteration loops skip the (timing-
    sensitive, multi-second) measurement."""

    def rounds_per_sec(vectorized: bool) -> float:
        eng = _throughput_engine(64, vectorized=vectorized, rounds=8)
        eng.run(DPSGD(64))  # warm-up: BLAS threads, allocator, caches
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            eng.run(DPSGD(64))
            best = min(best, time.perf_counter() - t0)
        return 8 / best

    serial = rounds_per_sec(False)
    vectorized = rounds_per_sec(True)
    assert vectorized >= 2.0 * serial, (
        f"vectorized engine too slow: {vectorized:.1f} vs serial "
        f"{serial:.1f} rounds/sec ({vectorized / serial:.2f}x, need >=2x)"
    )


def test_evaluation_throughput(benchmark, batch):
    """Accuracy evaluation of one node model on a 600-sample test set."""
    from repro.simulation.metrics import evaluate_model_vector

    rng = np.random.default_rng(0)
    model = small_mlp(64, 10, hidden=24, rng=rng)
    ds, _ = make_classification_images(SPEC, 600, rng)
    vec = parameter_vector(model)

    benchmark(lambda: evaluate_model_vector(model, vec, ds))
