"""Engine microbenchmarks: the per-round costs that determine how far
the simulator scales (these are true multi-round pytest benchmarks, not
one-shot experiment regenerations).

The ``test_rounds_*`` family measures whole-engine throughput
(rounds/sec) for the serial, vectorized and block-parallel engines at
16/64/256 nodes — the speedup the batched multi-node path exists to
deliver. ``test_vectorized_speedup_at_64_nodes`` turns the headline
claim into an assertion rather than a printout.

The ``test_eval_*`` / ``test_sweep_jobs_*`` family is the *tracked*
baseline: serial vs batched cross-node evaluation at 16/64/256 nodes
and ``--jobs 1`` vs ``--jobs 4`` sweep wall-clock through the
persistent shared-memory pool, each recorded into
``BENCH_throughput.json`` (:func:`benchmarks.conftest.record_bench`) so
future PRs have a perf trajectory to regress against. Speed gates:
batched eval must never be slower than serial at 64 nodes (quick mode)
and must deliver ≥3× (full mode, ``slow`` marker); the pooled sweep
must beat serial whenever the machine has ≥2 cores (quick mode) and
deliver ≥1.3× on ≥4 cores (full mode).

The ``test_async_*`` family tracks the event-driven engine: activation
events per second through the serial loop and under disjoint event
batching (``vectorized=True``), with the batched mode gated at
never-slower (quick) and ≥2× (full mode) over serial at 64 nodes —
after asserting the two modes' trajectories are bit-identical.
"""

import time

import numpy as np
import pytest

from repro.core import DPSGD
from repro.data import make_classification_images
from repro.data.synthetic import SyntheticSpec
from repro.nn import CrossEntropyLoss, SGD, gn_lenet_cifar10, small_mlp
from repro.nn.batched import BatchedEvaluator
from repro.nn.serialization import parameter_vector, set_parameter_vector
from repro.simulation import EngineConfig, build_engine
from repro.simulation.metrics import evaluate_state

from .conftest import record_bench, run_once

SPEC = SyntheticSpec(num_classes=10, channels=1, image_size=8,
                     noise_std=2.0, prototype_resolution=4)


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(0)
    ds, _ = make_classification_images(SPEC, 64, rng)
    return ds.x[:32], ds.y[:32]


def test_local_sgd_step_small_mlp(benchmark, batch):
    """One local training step of the bench model (forward+backward+update)."""
    model = small_mlp(64, 10, hidden=24, rng=np.random.default_rng(0))
    loss = CrossEntropyLoss()
    opt = SGD(model.parameters(), lr=0.1)
    x, y = batch

    def step():
        logits = model(x)
        loss.forward(logits, y)
        model.zero_grad()
        model.backward(loss.backward())
        opt.step()

    benchmark(step)


def test_local_sgd_step_paper_cnn(benchmark):
    """One local step of the paper's 89 834-param GN-LeNet on a real
    32-sample CIFAR-shaped batch — the paper-scale per-step cost."""
    rng = np.random.default_rng(0)
    model = gn_lenet_cifar10(rng=rng)
    loss = CrossEntropyLoss()
    opt = SGD(model.parameters(), lr=0.1)
    x = rng.normal(size=(32, 3, 32, 32))
    y = rng.integers(0, 10, size=32)

    def step():
        logits = model(x)
        loss.forward(logits, y)
        model.zero_grad()
        model.backward(loss.backward())
        opt.step()

    benchmark(step)


def test_parameter_vector_roundtrip(benchmark):
    """Serialize + deserialize the paper CNN's parameters — the per-node
    cost of entering/leaving the shared state matrix each round."""
    model = gn_lenet_cifar10(rng=np.random.default_rng(0))
    buf = np.empty(model.num_parameters())

    def roundtrip():
        parameter_vector(model, out=buf)
        set_parameter_vector(model, buf)

    benchmark(roundtrip)


# -- whole-engine throughput: serial vs vectorized vs block-parallel ----------

ENGINE_ROUNDS = 10


def _mlp_factory(rng: np.random.Generator):
    return small_mlp(64, 10, hidden=16, rng=rng)


def _throughput_engine(n_nodes: int, *, vectorized: bool = False,
                       parallel: bool = False, rounds: int = ENGINE_ROUNDS):
    """Bench-model engine sized so per-round training dominates: a tiny
    test set keeps the (identical-cost) final evaluation negligible."""
    cfg = EngineConfig(local_steps=8, learning_rate=0.2, total_rounds=rounds,
                       eval_every=10_000, vectorized=vectorized)
    return build_engine(SPEC, n_nodes, cfg, _mlp_factory, seed=0,
                        num_train=40 * n_nodes, num_test=32, batch_size=8,
                        parallel=parallel, processes=4)


@pytest.mark.parametrize("n_nodes", [16, 64, 256])
def test_rounds_serial(benchmark, n_nodes):
    """Per-node Python loop: the baseline the batched engine is measured
    against."""
    eng = _throughput_engine(n_nodes)
    run_once(benchmark, lambda: eng.run(DPSGD(n_nodes)))


@pytest.mark.parametrize("n_nodes", [16, 64, 256])
def test_rounds_vectorized(benchmark, n_nodes):
    """Batched multi-node engine: stacked GEMMs over all masked nodes."""
    eng = _throughput_engine(n_nodes, vectorized=True)
    run_once(benchmark, lambda: eng.run(DPSGD(n_nodes)))


@pytest.mark.slow
@pytest.mark.parametrize("n_nodes", [16, 64, 256])
def test_rounds_parallel_vectorized(benchmark, n_nodes):
    """Block-parallel engine with vectorized workers: the two speedups
    compose (4 workers × stacked blocks). For these tiny bench models
    IPC dominates — the case exists to track the composition overhead,
    not to win."""
    with _throughput_engine(n_nodes, vectorized=True, parallel=True) as eng:
        run_once(benchmark, lambda: eng.run(DPSGD(n_nodes)))


@pytest.mark.slow
def test_vectorized_speedup_at_64_nodes():
    """Acceptance gate: the vectorized engine must deliver at least 2x
    the serial engine's rounds/sec at 64 nodes (observed: ~4x). Best of
    three timed windows per engine so a scheduler stall on a loaded
    machine cannot sink an otherwise-green run; carries the ``slow``
    marker so quick `-m "not slow"` iteration loops skip the (timing-
    sensitive, multi-second) measurement."""

    def rounds_per_sec(vectorized: bool) -> float:
        eng = _throughput_engine(64, vectorized=vectorized, rounds=8)
        eng.run(DPSGD(64))  # warm-up: BLAS threads, allocator, caches
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            eng.run(DPSGD(64))
            best = min(best, time.perf_counter() - t0)
        return 8 / best

    serial = rounds_per_sec(False)
    vectorized = rounds_per_sec(True)
    record_bench("train_rounds_n64", {
        "n_nodes": 64,
        "serial_rounds_per_s": round(serial, 3),
        "vectorized_rounds_per_s": round(vectorized, 3),
        "speedup": round(vectorized / serial, 3),
    })
    assert vectorized >= 2.0 * serial, (
        f"vectorized engine too slow: {vectorized:.1f} vs serial "
        f"{serial:.1f} rounds/sec ({vectorized / serial:.2f}x, need >=2x)"
    )


def test_evaluation_throughput(benchmark, batch):
    """Accuracy evaluation of one node model on a 600-sample test set."""
    from repro.simulation.metrics import evaluate_model_vector

    rng = np.random.default_rng(0)
    model = small_mlp(64, 10, hidden=24, rng=rng)
    ds, _ = make_classification_images(SPEC, 600, rng)
    vec = parameter_vector(model)

    benchmark(lambda: evaluate_model_vector(model, vec, ds))


# -- cross-node evaluation: serial vs batched (tracked baseline) --------------

EVAL_TEST_SAMPLES = 600
# The bench model is ~100x smaller than the paper CNNs, so the eval
# batch is scaled down with it (the training benches do the same:
# batch_size=8) to preserve the paper-faithful ratio of per-batch
# compute to per-batch dispatch overhead that the batched evaluator
# attacks.
EVAL_BATCH = 64


def _eval_setup(n_nodes: int):
    """One bench-model workspace (the engine benches' ``_mlp_factory``
    architecture), an ``(n_nodes, dim)`` state of perturbed copies of
    it, and a 600-sample test set."""
    rng = np.random.default_rng(0)
    model = _mlp_factory(rng)
    ds, _ = make_classification_images(SPEC, EVAL_TEST_SAMPLES, rng)
    init = parameter_vector(model)
    state = init[None, :] + 0.05 * rng.normal(size=(n_nodes, init.size))
    return model, state, ds


def _best_of(fn, repeats: int = 3) -> float:
    """Best of ``repeats`` timed calls after one warm-up — a scheduler
    stall on a loaded machine cannot sink a measurement."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure_eval(n_nodes: int) -> tuple[float, float]:
    """(serial_seconds, batched_seconds) per full-state eval round,
    after asserting the two paths return exactly equal accuracies."""
    model, state, ds = _eval_setup(n_nodes)
    evaluator = BatchedEvaluator(model)

    def serial():
        return evaluate_state(model, state, ds, batch_size=EVAL_BATCH)

    def batched():
        return evaluate_state(model, state, ds, batch_size=EVAL_BATCH,
                              evaluator=evaluator)

    assert serial() == batched()  # exact equality, mean and std
    return _best_of(serial), _best_of(batched)


@pytest.mark.parametrize("n_nodes", [16, 64, 256])
def test_eval_serial_vs_batched(n_nodes):
    """The tracked eval baseline: full-state evaluation cost per round,
    serial per-node loop vs one stacked pass per test batch."""
    serial_s, batched_s = _measure_eval(n_nodes)
    record_bench(f"eval_n{n_nodes}", {
        "n_nodes": n_nodes,
        "test_samples": EVAL_TEST_SAMPLES,
        "serial_s": round(serial_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup": round(serial_s / batched_s, 3),
    })


def test_batched_eval_not_slower_at_64_nodes():
    """Quick-mode CI gate: the batched evaluator must never lose to the
    serial loop at 64 nodes (the full ≥3× gate carries the ``slow``
    marker)."""
    serial_s, batched_s = _measure_eval(64)
    record_bench("eval_gate_n64", {
        "n_nodes": 64,
        "serial_s": round(serial_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup": round(serial_s / batched_s, 3),
    })
    assert batched_s <= serial_s, (
        f"batched eval slower than serial at 64 nodes: "
        f"{batched_s:.4f}s vs {serial_s:.4f}s"
    )


@pytest.mark.slow
def test_batched_eval_speedup_at_64_nodes():
    """Acceptance gate: ≥3× faster evaluation at 64 nodes (observed:
    well above; the serial path pays 64 × n_batches Python dispatches
    per round, the batched path n_batches stacked GEMMs)."""
    serial_s, batched_s = _measure_eval(64)
    speedup = serial_s / batched_s
    record_bench("eval_speedup_n64", {
        "n_nodes": 64,
        "serial_s": round(serial_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup": round(speedup, 3),
    })
    assert speedup >= 3.0, (
        f"batched eval too slow at 64 nodes: {speedup:.2f}x (need >=3x)"
    )


# -- async gossip engine: events/sec (tracked baseline) -----------------------


def _async_engine(n_nodes: int, *, vectorized: bool = False):
    """Bench-model async engine: same MLP/data scale as the sync
    throughput benches, tiny test set so evaluation stays negligible."""
    from repro.simulation import AsyncGossipEngine, RngFactory, build_nodes
    from repro.topology import neighbor_lists, regular_graph

    from repro.data import shard_partition

    rngs = RngFactory(0)
    train, protos = make_classification_images(SPEC, 40 * n_nodes,
                                               rngs.stream("data"))
    test, _ = make_classification_images(SPEC, 32, rngs.stream("test"),
                                         prototypes=protos)
    parts = shard_partition(train.y, n_nodes, rng=rngs.stream("partition"))
    nodes = build_nodes(train, parts, 8, rngs)
    graph = regular_graph(n_nodes, 4, seed=0)
    model = _mlp_factory(rngs.stream("model"))
    return AsyncGossipEngine(
        model, nodes, neighbor_lists(graph), test,
        local_steps=8, learning_rate=0.2, rng=rngs.stream("events"),
        eval_rng=rngs.stream("async-eval"), vectorized=vectorized,
    )


def test_async_events_throughput():
    """The tracked async baseline: activation events per second at 64
    nodes — the per-event cost the in-place gossip rewrite attacks
    (recorded as ``async_events_per_sec`` in the quick-mode bench
    gate)."""
    from repro.simulation import AsyncDPSGD

    activations = 4
    events = 64 * activations

    def run():
        eng = _async_engine(64)
        eng.run(AsyncDPSGD(), activations_per_node=activations,
                eval_every=events)
        return eng

    best = _best_of(run)
    record_bench("async_events_per_sec", {
        "n_nodes": 64,
        "events": events,
        "best_s": round(best, 6),
        "events_per_s": round(events / best, 3),
    })
    assert best > 0.0


def _measure_async_events(n_nodes: int = 64, activations: int = 4):
    """(serial_seconds, batched_seconds) for one full async run, after
    asserting the two modes end in bit-identical states and histories
    (the disjoint-event-batching contract the conformance suite
    enforces in depth)."""
    from repro.simulation import AsyncDPSGD

    events = n_nodes * activations

    def run(vectorized: bool):
        eng = _async_engine(n_nodes, vectorized=vectorized)
        hist = eng.run(AsyncDPSGD(), activations_per_node=activations,
                       eval_every=events)
        return eng, hist

    eng_s, hist_s = run(False)
    eng_b, hist_b = run(True)
    np.testing.assert_array_equal(eng_s.state, eng_b.state)
    assert repr(hist_s.records) == repr(hist_b.records)

    serial_s = _best_of(lambda: run(False))
    batched_s = _best_of(lambda: run(True))
    return serial_s, batched_s, events


def test_async_events_batched_not_slower_at_64_nodes():
    """Quick-mode CI gate: disjoint event batching must never lose to
    the serial event loop at 64 nodes (the full ≥2× gate carries the
    ``slow`` marker). Recorded as ``async_events_per_sec_batched``."""
    serial_s, batched_s, events = _measure_async_events()
    record_bench("async_events_per_sec_batched", {
        "n_nodes": 64,
        "events": events,
        "serial_s": round(serial_s, 6),
        "batched_s": round(batched_s, 6),
        "serial_events_per_s": round(events / serial_s, 3),
        "batched_events_per_s": round(events / batched_s, 3),
        "speedup": round(serial_s / batched_s, 3),
    })
    assert batched_s <= serial_s, (
        f"batched async engine slower than serial at 64 nodes: "
        f"{batched_s:.4f}s vs {serial_s:.4f}s"
    )


@pytest.mark.slow
def test_async_events_batched_speedup_at_64_nodes():
    """Acceptance gate: ≥2× events/sec from disjoint event batching at
    64 nodes (the serial loop pays one Python-level training pass per
    event; batching amortizes it into stacked passes per disjoint
    batch)."""
    serial_s, batched_s, events = _measure_async_events()
    speedup = serial_s / batched_s
    record_bench("async_events_speedup_n64", {
        "n_nodes": 64,
        "events": events,
        "serial_s": round(serial_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup": round(speedup, 3),
    })
    assert speedup >= 2.0, (
        f"batched async engine too slow at 64 nodes: {speedup:.2f}x "
        f"(need >=2x)"
    )


# -- fleet-scale cells: the node axis at 1024-16384 nodes (tracked) -----------

#: A single dense float64 n×n intermediate at n=16384 is ~2147 MiB, so
#: staying under this cap proves the whole path is O(E + n·dim).
FLEET_RSS_CAP_MIB = 2048.0


def _measure_fleet_cell(n_nodes: int):
    """(seconds, rounds) for one full fleet-preset sync cell — sparse
    NeighborList topology, vectorized trainer, auto state backend."""
    from repro.experiments.presets import fleet_preset
    from repro.experiments.runner import build_run, prepare

    preset = fleet_preset(n_nodes)
    prepared = prepare(preset, preset.degrees[0], seed=0)
    engine, algo = build_run(prepared, "skiptrain",
                             total_rounds=preset.total_rounds,
                             vectorized=True, state_backend="auto")
    try:
        t0 = time.perf_counter()
        engine.run(algo)
        elapsed = time.perf_counter() - t0
    finally:
        engine.close()
    return elapsed, preset.total_rounds


@pytest.mark.parametrize("n_nodes", [1024, 4096, 16384])
def test_train_rounds_fleet(n_nodes):
    """The tracked fleet baseline and memory gate: a whole n=1024/4096/
    16384 sync cell must complete under quick CI settings with peak RSS
    an order of magnitude below the dense-n×n footprint. Recorded as
    ``train_rounds_n{1024,4096,16384}`` — the scale trajectory the
    ROADMAP's 10k-1M fleet item regresses against."""
    from .conftest import peak_rss_mib

    elapsed, rounds = _measure_fleet_cell(n_nodes)
    record_bench(f"train_rounds_n{n_nodes}", {
        "n_nodes": n_nodes,
        "rounds": rounds,
        "vectorized": True,
        "state_backend": "auto",
        "cell_s": round(elapsed, 4),
        "rounds_per_s": round(rounds / elapsed, 3),
    })
    rss = peak_rss_mib()
    assert rss < FLEET_RSS_CAP_MIB, (
        f"fleet cell at n={n_nodes} peaked at {rss:.0f} MiB — at or "
        f"above the {FLEET_RSS_CAP_MIB:.0f} MiB cap that rules out "
        f"dense n×n intermediates"
    )


# -- sweep cell parallelism: --jobs 1 vs --jobs 4 (tracked baseline) ----------


def _measure_sweep_jobs(bench16_cifar, tmp_path):
    """(jobs1_s, jobs4_s, plan) for an 8-cell plan executed serially vs
    on the persistent 4-worker shared-memory pool, after asserting the
    two artifact directories are byte-identical (the --jobs contract)."""
    import dataclasses

    from repro.experiments import build_plan, run_sweep
    from repro.experiments.artifacts import artifact_path

    preset = dataclasses.replace(bench16_cifar, total_rounds=16, eval_every=8,
                                 degrees=(3, 4))
    plan = build_plan(preset, ("skiptrain", "d-psgd"), degrees=(3, 4),
                      seeds=(0, 1))
    lookup = lambda name: preset  # noqa: E731

    t0 = time.perf_counter()
    run_sweep(plan, tmp_path / "j1", jobs=1, preset_lookup=lookup)
    jobs1_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_sweep(plan, tmp_path / "j4", jobs=4, preset_lookup=lookup)
    jobs4_s = time.perf_counter() - t0

    for cell in plan:
        assert (artifact_path(tmp_path / "j1", cell).read_bytes()
                == artifact_path(tmp_path / "j4", cell).read_bytes())
    return jobs1_s, jobs4_s, plan


def test_sweep_jobs_wallclock(bench16_cifar, tmp_path):
    """The tracked sweep-parallelism baseline and quick-mode CI gate:
    8 cells (2 algorithms × 2 degrees × 2 seeds) through the persistent
    pool must beat serial wall-clock whenever the machine actually has
    cores to parallelise over. The recorded ``cpus`` field keeps
    single-core measurements honest — on 1 CPU workers time-slice and
    the pool can only tie, so the gate arms at ≥2 cores."""
    import os

    jobs1_s, jobs4_s, plan = _measure_sweep_jobs(bench16_cifar, tmp_path)
    cpus = os.cpu_count() or 1
    speedup = jobs1_s / jobs4_s
    record_bench("sweep_jobs", {
        "cells": len(plan),
        "preset": plan[0].preset,
        "total_rounds": plan[0].total_rounds,
        "jobs": 4,
        "pool": "persistent",
        "cpus": cpus,
        "jobs1_s": round(jobs1_s, 4),
        "jobs4_s": round(jobs4_s, 4),
        "speedup": round(speedup, 3),
    })
    if cpus >= 2:
        assert speedup > 1.0, (
            f"persistent pool slower than serial on {cpus} cores: "
            f"{jobs4_s:.2f}s vs {jobs1_s:.2f}s ({speedup:.2f}x)"
        )


@pytest.mark.slow
def test_sweep_jobs_speedup_multicore(bench16_cifar, tmp_path):
    """Acceptance gate (full mode): on a machine with ≥4 cores the
    4-worker pool must cut 8-cell sweep wall-clock by ≥1.3× — the floor
    the persistent-pool rework ships against (per-cell dispatch plus
    one shared dataset prep leaves ample headroom below the ~4× ideal,
    but a regression to group-grained scheduling or per-worker re-prep
    would land under it)."""
    import os

    cpus = os.cpu_count() or 1
    if cpus < 4:
        pytest.skip(f"need >=4 cores for the 1.3x gate, have {cpus}")
    jobs1_s, jobs4_s, plan = _measure_sweep_jobs(bench16_cifar, tmp_path)
    speedup = jobs1_s / jobs4_s
    record_bench("sweep_jobs_full", {
        "cells": len(plan),
        "cpus": cpus,
        "jobs1_s": round(jobs1_s, 4),
        "jobs4_s": round(jobs4_s, 4),
        "speedup": round(speedup, 3),
    })
    assert speedup > 1.3, (
        f"persistent pool under the 1.3x floor on {cpus} cores: "
        f"{jobs4_s:.2f}s vs {jobs1_s:.2f}s ({speedup:.2f}x)"
    )
