"""Engine microbenchmarks: the per-round costs that determine how far
the simulator scales (these are true multi-round pytest benchmarks, not
one-shot experiment regenerations)."""

import numpy as np
import pytest

from repro.data import make_classification_images
from repro.data.synthetic import SyntheticSpec
from repro.nn import CrossEntropyLoss, SGD, gn_lenet_cifar10, small_mlp
from repro.nn.serialization import parameter_vector, set_parameter_vector

SPEC = SyntheticSpec(num_classes=10, channels=1, image_size=8,
                     noise_std=2.0, prototype_resolution=4)


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(0)
    ds, _ = make_classification_images(SPEC, 64, rng)
    return ds.x[:32], ds.y[:32]


def test_local_sgd_step_small_mlp(benchmark, batch):
    """One local training step of the bench model (forward+backward+update)."""
    model = small_mlp(64, 10, hidden=24, rng=np.random.default_rng(0))
    loss = CrossEntropyLoss()
    opt = SGD(model.parameters(), lr=0.1)
    x, y = batch

    def step():
        logits = model(x)
        loss.forward(logits, y)
        model.zero_grad()
        model.backward(loss.backward())
        opt.step()

    benchmark(step)


def test_local_sgd_step_paper_cnn(benchmark):
    """One local step of the paper's 89 834-param GN-LeNet on a real
    32-sample CIFAR-shaped batch — the paper-scale per-step cost."""
    rng = np.random.default_rng(0)
    model = gn_lenet_cifar10(rng=rng)
    loss = CrossEntropyLoss()
    opt = SGD(model.parameters(), lr=0.1)
    x = rng.normal(size=(32, 3, 32, 32))
    y = rng.integers(0, 10, size=32)

    def step():
        logits = model(x)
        loss.forward(logits, y)
        model.zero_grad()
        model.backward(loss.backward())
        opt.step()

    benchmark(step)


def test_parameter_vector_roundtrip(benchmark):
    """Serialize + deserialize the paper CNN's parameters — the per-node
    cost of entering/leaving the shared state matrix each round."""
    model = gn_lenet_cifar10(rng=np.random.default_rng(0))
    buf = np.empty(model.num_parameters())

    def roundtrip():
        parameter_vector(model, out=buf)
        set_parameter_vector(model, buf)

    benchmark(roundtrip)


def test_evaluation_throughput(benchmark, batch):
    """Accuracy evaluation of one node model on a 600-sample test set."""
    from repro.simulation.metrics import evaluate_model_vector

    rng = np.random.default_rng(0)
    model = small_mlp(64, 10, hidden=24, rng=rng)
    ds, _ = make_classification_images(SPEC, 600, rng)
    vec = parameter_vector(model)

    benchmark(lambda: evaluate_model_vector(model, vec, ds))
