"""Ablation bench: SkipTrain vs client-sampling D-PSGD at equal
training volume.

Client sampling (Liu et al. 2022) also trains a fraction of node-rounds
— but scattered across rounds, so there is never a training-silent
round and the consecutive-mixing contraction of SkipTrain's sync
batches is lost. At matched energy, coordination should win (or tie) on
the heterogeneous task, and both must beat nothing.
"""

import numpy as np
import pytest

from repro.core import ClientSamplingDPSGD, RoundSchedule
from repro.experiments import prepare, run_algorithm

from .conftest import run_once


def test_client_sampling_ablation(benchmark, bench16_cifar):
    def compute():
        prepared = prepare(bench16_cifar, 3, seed=11)
        n = bench16_cifar.n_nodes
        skiptrain = run_algorithm(prepared, "skiptrain",
                                  schedule=RoundSchedule(4, 4))
        sampling = run_algorithm(
            prepared,
            ClientSamplingDPSGD(n, n // 2, np.random.default_rng(0)),
        )
        return skiptrain, sampling

    skiptrain, sampling = run_once(benchmark, compute)

    acc_skip = skiptrain.history.final_accuracy()
    acc_samp = sampling.history.final_accuracy()
    e_skip = skiptrain.meter.total_train_wh
    e_samp = sampling.meter.total_train_wh
    print(f"\nSkipTrain (4,4)        : {acc_skip * 100:5.1f}% @ {e_skip:.2f} Wh")
    print(f"client-sampling (k=n/2): {acc_samp * 100:5.1f}% @ {e_samp:.2f} Wh")

    # equal expected training volume ⇒ equal energy (within sampling noise)
    assert e_samp == pytest.approx(e_skip, rel=0.1)
    # coordinated silence is at least as good as scattered silence
    assert acc_skip >= acc_samp - 0.03
