"""Figure 6 / Table 4 bench: the energy-constrained setting.

Paper shapes checked (CIFAR-like, sparse topology):

* SkipTrain-constrained beats both Greedy and budget-matched D-PSGD
  (paper: +9 pp over Greedy, +12 pp over D-PSGD);
* Greedy ≥ D-PSGD at equal energy (the §4.6 validation that sync
  rounds keep helping after the budget is gone), with the margin
  shrinking as the topology densifies;
* no node exceeds its battery budget τ_i.
"""


from repro.experiments import table4

from .conftest import run_once


def test_table4_cifar(benchmark, bench16_cifar):
    result = run_once(benchmark, lambda: table4(bench16_cifar, seed=11))

    print("\n" + result.render())
    for deg in bench16_cifar.degrees:
        accs = result.figure6.accuracy_at_budget(deg)
        print(f"degree {deg}: " + ", ".join(
            f"{k} {v * 100:.1f}%" for k, v in accs.items()
        ))

    sparse = bench16_cifar.degrees[0]
    accs = result.figure6.accuracy_at_budget(sparse)
    assert accs["SkipTrain-constrained"] > accs["Greedy"]
    assert accs["SkipTrain-constrained"] > accs["D-PSGD"]
    assert accs["Greedy"] >= accs["D-PSGD"] - 0.03

    # budget respected on every degree
    for deg in bench16_cifar.degrees:
        res = result.figure6.constrained[deg]
        assert (res.meter.train_rounds <= res.trace.budget_rounds).all()


def test_table4_femnist(benchmark, bench16_femnist):
    result = run_once(benchmark, lambda: table4(bench16_femnist, seed=11))

    print("\n" + result.render())
    sparse = bench16_femnist.degrees[0]
    accs = result.figure6.accuracy_at_budget(sparse)
    print(f"\nsparse-degree ordering: constrained {accs['SkipTrain-constrained']*100:.1f}%"
          f" vs Greedy {accs['Greedy']*100:.1f}% vs D-PSGD {accs['D-PSGD']*100:.1f}%"
          " (paper: smaller gaps than CIFAR, same direction)")

    # FEMNIST gaps are small in the paper; require constrained not to lose
    assert accs["SkipTrain-constrained"] >= accs["D-PSGD"] - 0.02
    assert accs["SkipTrain-constrained"] >= accs["Greedy"] - 0.02
