"""Mechanism bench: the consensus-distance story of §3.1.

Shapes checked on identical data/topology:

* all-reduce drives consensus distance to (numerically) zero;
* SkipTrain's evaluated (post-sync-batch) consensus distance is below
  D-PSGD's at the end of training;
* the ordering of final consensus distance predicts the ordering of
  final accuracy (the paper's causal claim, as a correlation check).
"""

from repro.experiments import convergence_study

from .conftest import run_once


def test_consensus_mechanism(benchmark, bench16_cifar):
    result = run_once(
        benchmark, lambda: convergence_study(bench16_cifar, seed=11)
    )

    print("\n" + result.render())

    cons_dpsgd = result.final_consensus("d-psgd")
    cons_skip = result.final_consensus("skiptrain")
    cons_ar = result.final_consensus("d-psgd-allreduce")
    acc_dpsgd = result.histories["d-psgd"].final_accuracy()
    acc_skip = result.histories["skiptrain"].final_accuracy()
    acc_ar = result.histories["d-psgd-allreduce"].final_accuracy()

    print(f"\nconsensus distance: all-reduce {cons_ar:.2e} "
          f"< SkipTrain {cons_skip:.3f} < D-PSGD {cons_dpsgd:.3f}")
    print(f"accuracy:           all-reduce {acc_ar * 100:.1f}% "
          f"> SkipTrain {acc_skip * 100:.1f}% > D-PSGD {acc_dpsgd * 100:.1f}%")

    assert cons_ar < 1e-12
    assert cons_skip < cons_dpsgd
    # lower disagreement ↔ higher accuracy, pairwise
    assert acc_ar >= acc_skip - 0.02
    assert acc_skip >= acc_dpsgd
