"""Benchmark suite package.

Making ``benchmarks/`` a package lets its modules import shared
fixtures with ``from .conftest import run_once`` without colliding with
``tests/conftest.py`` when pytest collects both directories from the
repository root (two top-level non-package ``conftest`` modules would
shadow each other on ``sys.path``).
"""
