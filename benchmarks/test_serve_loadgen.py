"""Serving-path benchmark: jobs/second through the full daemon stack.

A closed-loop loadgen (submit, wait, submit) drives an in-process
``ScenarioServer`` over loopback HTTP, so the measured rate includes
request parsing, queueing, pool dispatch, the cell itself, artifact
write and the status polling round trips — the end-to-end cost of one
served job, not a component microbenchmark. The measurement lands in
``BENCH_throughput.json`` as ``serve_jobs_per_sec`` and is gated at a
strictly positive completed-job rate: a daemon that accepts but never
finishes work fails the bench rather than recording zeros.
"""

import dataclasses
import multiprocessing as mp

import pytest

from repro.experiments.serve import (
    ScenarioServer,
    ServeConfig,
    build_schedule,
    run_loadgen,
)
from repro.scenarios import AlgorithmSpec, ScenarioSpec

from .conftest import record_bench, run_once

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="the serve daemon runs cells on the fork-based pool",
)

N_JOBS = 4
ROUNDS = 8


@pytest.fixture(scope="module")
def serve_preset(bench16_cifar):
    return dataclasses.replace(bench16_cifar, name="serve-bench16",
                               total_rounds=ROUNDS, eval_every=ROUNDS)


@pytest.fixture(scope="module")
def serve_scenario():
    return ScenarioSpec(
        name="serve-bench-sc",
        preset="serve-bench16",
        total_rounds=ROUNDS,
        eval_every=ROUNDS,
        algorithm=AlgorithmSpec(name="d-psgd"),
    )


def test_serve_jobs_per_sec(benchmark, serve_preset, serve_scenario,
                            tmp_path):
    server = ScenarioServer(
        ServeConfig(results_dir=str(tmp_path / "served"), port=0, jobs=2),
        preset_lookup={serve_preset.name: serve_preset}.__getitem__,
        scenario_lookup={serve_scenario.name: serve_scenario}.__getitem__,
    )
    server.start()
    schedule = build_schedule([(serve_scenario.name, 1.0)],
                              process="closed", n_jobs=N_JOBS, seed=0)
    try:
        report = run_once(
            benchmark,
            lambda: run_loadgen(server.url, schedule, seeds_per_job=1,
                                seed_base=0, rounds=ROUNDS,
                                process="closed", timeout_s=300.0),
        )
    finally:
        server.begin_drain()
        server.wait(timeout=60)
        server.close()
    summary = report["summary"]
    assert summary["jobs_completed"] == N_JOBS, summary
    jobs_per_sec = summary["throughput_jobs_per_s"]
    assert jobs_per_sec > 0, "served jobs must actually complete"
    record_bench("serve_jobs_per_sec", {
        "jobs_per_sec": round(jobs_per_sec, 3),
        "n_jobs": N_JOBS,
        "rounds_per_job": ROUNDS,
        "n_nodes": serve_preset.n_nodes,
        "pool_workers": 2,
        "total_s_p50": round(summary["total_s_p50"], 3),
        "queue_wait_s_p50": round(summary["queue_wait_s_p50"], 3),
        "wall_s": round(summary["wall_s"], 2),
    })
    print(f"\nserve: {jobs_per_sec:.2f} jobs/s over {N_JOBS} closed-loop "
          f"jobs ({ROUNDS} rounds, {serve_preset.n_nodes} nodes)")
