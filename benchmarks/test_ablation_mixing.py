"""Ablation bench: the aggregation step's implementation and weights.

DESIGN.md §5 calls out two design choices in the mixing step:

1. sparse vs dense matmul for ``X ← WX`` — a real microbenchmark
   (multiple timed rounds), since this is the engine's only non-training
   hot spot;
2. Metropolis–Hastings vs uniform-neighbor weights — MH remains doubly
   stochastic on irregular graphs where uniform weights silently break
   the conservation law D-PSGD's convergence relies on.
"""

import numpy as np
import pytest

from repro.topology import (
    erdos_renyi_graph,
    is_doubly_stochastic,
    metropolis_hastings_weights,
    regular_graph,
    uniform_neighbor_weights,
)

N_NODES = 256
DIM = 2048


@pytest.fixture(scope="module")
def state():
    return np.random.default_rng(0).normal(size=(N_NODES, DIM))


@pytest.fixture(scope="module")
def mixing_sparse():
    return metropolis_hastings_weights(regular_graph(N_NODES, 6, seed=0))


def test_mixing_sparse_matmul(benchmark, state, mixing_sparse):
    """Paper-scale sparse mixing step (256 nodes, 6-regular)."""
    out = benchmark(lambda: mixing_sparse @ state)
    np.testing.assert_allclose(out.mean(axis=0), state.mean(axis=0), atol=1e-9)


def test_mixing_dense_matmul(benchmark, state, mixing_sparse):
    """Same product with a densified matrix — the baseline the sparse
    path is compared against in the benchmark report."""
    dense = mixing_sparse.toarray()
    out = benchmark(lambda: dense @ state)
    np.testing.assert_allclose(out.mean(axis=0), state.mean(axis=0), atol=1e-9)


def test_mixing_weights_ablation(benchmark):
    """MH vs uniform weights on an irregular graph: only MH preserves
    the global average (double stochasticity)."""

    def compute():
        g = erdos_renyi_graph(64, seed=3)
        mh = metropolis_hastings_weights(g)
        uni = uniform_neighbor_weights(g)
        x = np.random.default_rng(1).normal(size=(64, 32))
        drift_mh = np.abs((mh @ x).mean(axis=0) - x.mean(axis=0)).max()
        drift_uni = np.abs((uni @ x).mean(axis=0) - x.mean(axis=0)).max()
        return mh, uni, drift_mh, drift_uni

    mh, uni, drift_mh, drift_uni = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    print(f"\nmean-drift per step — MH: {drift_mh:.2e}, uniform: {drift_uni:.2e}")
    assert is_doubly_stochastic(mh)
    assert not is_doubly_stochastic(uni)
    assert drift_mh < 1e-12
    assert drift_uni > 1e-6
