"""Figure 1 bench: D-PSGD vs D-PSGD with all-reduce every round.

Paper shape: the all-reduced model gains ≈10 accuracy points over plain
D-PSGD's node-mean accuracy on the sparse topology.
"""

from repro.experiments import figure1

from .conftest import run_once


def test_fig1_allreduce_boost(benchmark, bench16_cifar):
    result = run_once(benchmark, lambda: figure1(bench16_cifar, seed=11))

    print("\n" + result.render())
    print(f"\nall-reduce improvement: {result.improvement() * 100:+.1f} pp "
          f"(paper: ≈ +10 pp)")

    assert result.improvement() > 0.02, (
        "all-reduce should clearly beat D-PSGD on the sparse topology"
    )
    # both runs trained every round: identical energy story, the gain is
    # purely from synchronization
    assert result.dpsgd.rounds[-1] == result.allreduce.rounds[-1]
