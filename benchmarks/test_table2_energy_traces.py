"""Table 2 bench: regenerate the energy traces and check them against
the paper's published values, plus the §1 training≫communication claim."""

import pytest

from repro.energy import (
    CIFAR10_WORKLOAD,
    assign_devices_round_robin,
    communication_energy_wh,
    per_round_energy_wh,
    table2_rows,
)
from repro.experiments import table2

from .conftest import run_once

PAPER_TABLE2 = {
    "Xiaomi 12 Pro": (6.5, 22, 272, 413),
    "Samsung Galaxy S22 Ultra": (6, 20, 324, 492),
    "OnePlus Nord 2 5G": (2.6, 8.4, 681, 1034),
    "Xiaomi Poco X3": (8.5, 28, 272, 413),
}


def test_table2_energy_traces(benchmark):
    rows = run_once(benchmark, table2_rows)

    print("\n" + table2())
    print("\npaper vs measured (mWh CIFAR / mWh FEMNIST / rounds CIFAR / rounds FEMNIST):")
    for r in rows:
        p = PAPER_TABLE2[r.device]
        print(f"  {r.device:26s} paper {p} | measured "
              f"({r.cifar10_mwh:.1f}, {r.femnist_mwh:.1f}, "
              f"{r.cifar10_rounds}, {r.femnist_rounds})")

    for r in rows:
        mwh_c, mwh_f, rounds_c, rounds_f = PAPER_TABLE2[r.device]
        assert r.cifar10_mwh == pytest.approx(mwh_c, rel=0.01)
        assert r.femnist_mwh == pytest.approx(mwh_f, rel=0.05)
        assert r.cifar10_rounds == rounds_c
        assert r.femnist_rounds == rounds_f


def test_section1_energy_claim(benchmark):
    """§1: 256 CIFAR nodes × 1000 rounds ⇒ 1.51 kWh training, ~7 Wh comm."""

    def compute():
        devs = assign_devices_round_robin(256)
        train = sum(per_round_energy_wh(d, CIFAR10_WORKLOAD) for d in devs) * 1000
        comm = sum(
            communication_energy_wh(d, CIFAR10_WORKLOAD, 6) for d in devs
        ) * 1000
        return train, comm

    train, comm = run_once(benchmark, compute)
    print(f"\ntraining: {train / 1000:.3f} kWh (paper: 1.51 kWh)")
    print(f"communication: {comm:.1f} Wh (paper: ≈7 Wh)")
    print(f"ratio: {train / comm:.0f}x (paper: >200x)")
    assert train == pytest.approx(1510, rel=0.01)
    assert train / comm > 200
