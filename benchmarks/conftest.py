"""Shared benchmark fixtures.

Every experiment benchmark runs exactly once (``pedantic`` with one
round) — these are end-to-end experiment regenerations, not
microbenchmarks, and each takes seconds to minutes. The timing recorded
by pytest-benchmark is the cost of regenerating the figure/table; the
printed output is the paper-shaped result.

Scales:

* ``bench16`` — 16 nodes, 80 rounds: the default for every figure/table
  bench; finishes in seconds and preserves all paper shapes.
* ``bench32`` — the full bench preset (32 nodes, 120 rounds), used by
  the headline Table 3 bench.
"""

from __future__ import annotations

import json
import os
import resource
from pathlib import Path

import numpy as np
import pytest

from repro.data.synthetic import SyntheticSpec
from repro.energy.traces import CIFAR10_WORKLOAD, FEMNIST_WORKLOAD
from repro.experiments.presets import ExperimentPreset, cifar10_bench, femnist_bench
from repro.nn import small_mlp


def _mlp10(rng: np.random.Generator):
    return small_mlp(64, 10, hidden=16, rng=rng)


def _mlp16(rng: np.random.Generator):
    return small_mlp(64, 16, hidden=16, rng=rng)


@pytest.fixture(scope="session")
def bench16_cifar() -> ExperimentPreset:
    """16-node CIFAR-like preset in the high-drift regime."""
    return ExperimentPreset(
        name="cifar10-bench16",
        n_nodes=16,
        degrees=(3, 4, 6),
        spec=SyntheticSpec(
            num_classes=10, channels=1, image_size=8,
            noise_std=2.5, jitter_std=0.6, prototype_resolution=4,
        ),
        num_train=16 * 150,
        num_test=600,
        partition="shard",
        model_factory=_mlp10,
        learning_rate=0.4,
        batch_size=8,
        local_steps=8,
        total_rounds=80,
        eval_every=16,
        eval_node_sample=None,
        workload=CIFAR10_WORKLOAD,
        # τ ≈ (20, 24, 50, 20) rounds vs T_train = 40: the same
        # 0.5/0.6/1.25/0.5 budget-to-training ratios as the paper's
        # Table 2 budgets against T_train = 500.
        battery_fraction=0.0074,
        tuned_schedules={3: (4, 4), 4: (3, 3), 6: (4, 2)},
    )


@pytest.fixture(scope="session")
def bench16_femnist() -> ExperimentPreset:
    """16-node FEMNIST-like preset (writer partition)."""
    return ExperimentPreset(
        name="femnist-bench16",
        n_nodes=16,
        degrees=(3, 4, 6),
        spec=SyntheticSpec(
            num_classes=16, channels=1, image_size=8,
            noise_std=1.5, jitter_std=0.5, prototype_resolution=4,
        ),
        num_train=16 * 150,
        num_test=600,
        partition="writer",
        model_factory=_mlp16,
        learning_rate=0.25,
        batch_size=8,
        local_steps=7,
        total_rounds=80,
        eval_every=16,
        eval_node_sample=None,
        workload=FEMNIST_WORKLOAD,
        # same τ/T_train ratios as the CIFAR preset (see above)
        battery_fraction=0.0242,
        tuned_schedules={3: (4, 4), 4: (3, 3), 6: (4, 2)},
        num_writers=24,
    )


@pytest.fixture(scope="session")
def bench32_cifar() -> ExperimentPreset:
    return cifar10_bench()


@pytest.fixture(scope="session")
def bench32_femnist() -> ExperimentPreset:
    return femnist_bench()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


# -- the tracked benchmark baseline (BENCH_throughput.json) -------------------

#: Repository-root artifact the throughput benchmarks write their
#: measurements into — the perf trajectory future PRs regress against.
BENCH_REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
BENCH_REPORT_SCHEMA = "repro/bench-throughput/v1"


def peak_rss_mib() -> float:
    """The process's peak resident set size in MiB (``ru_maxrss`` is
    KiB on Linux). A high-water mark, not an instantaneous reading: in
    a shared pytest process it reflects the heaviest point of the run
    so far, which is exactly the memory-trajectory signal the tracked
    baseline wants."""
    return round(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1)


def record_bench(name: str, payload: dict) -> Path:
    """Merge one named measurement into ``BENCH_throughput.json``.

    The file is rewritten atomically after every entry (sorted keys, so
    diffs are stable), which means an aborted or filtered run keeps the
    entries it did produce — each benchmark owns exactly one key.
    Every entry is stamped with the process's ``peak_rss_mib`` at
    record time, so future PRs inherit a memory trajectory alongside
    the timing one.
    """
    payload = {**payload, "peak_rss_mib": peak_rss_mib()}
    report = {"schema": BENCH_REPORT_SCHEMA, "entries": {}}
    if BENCH_REPORT_PATH.is_file():
        try:
            existing = json.loads(BENCH_REPORT_PATH.read_text())
        except json.JSONDecodeError:
            existing = None
        if isinstance(existing, dict) and (
            existing.get("schema") == BENCH_REPORT_SCHEMA
        ):
            report = existing
    report["entries"][name] = payload
    tmp = BENCH_REPORT_PATH.with_name(BENCH_REPORT_PATH.name + ".tmp")
    tmp.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    os.replace(tmp, BENCH_REPORT_PATH)
    return BENCH_REPORT_PATH
