"""Extension bench: the asynchronous SkipTrain of §5.3 (future work).

Shapes checked: the async gossip analogue preserves the paper's
headline trade-off — async-SkipTrain spends ≈½ the training energy of
async-D-PSGD at the same activation budget, with comparable accuracy.
"""

import pytest

from repro.core import RoundSchedule
from repro.experiments import prepare
from repro.simulation import (
    AsyncDPSGD,
    AsyncGossipEngine,
    AsyncSkipTrain,
    RngFactory,
    build_nodes,
)
from repro.topology import neighbor_lists, regular_graph

from .conftest import run_once


def _engine(prepared, seed=11):
    preset = prepared.preset
    rngs = RngFactory(seed)
    model = preset.model_factory(rngs.stream("model"))
    nodes = build_nodes(prepared.train, prepared.partition,
                        preset.batch_size, rngs)
    graph = regular_graph(preset.n_nodes, 3, seed=seed)
    return AsyncGossipEngine(
        model, nodes, neighbor_lists(graph), prepared.test,
        local_steps=preset.local_steps,
        learning_rate=preset.learning_rate,
        rng=rngs.stream("events"),
        trace=prepared.trace,
    )


def test_async_skiptrain_extension(benchmark, bench16_cifar):
    def compute():
        prepared = prepare(bench16_cifar, 3, seed=11)
        activations = bench16_cifar.total_rounds

        dpsgd_engine = _engine(prepared)
        dpsgd_hist = dpsgd_engine.run(AsyncDPSGD(),
                                      activations_per_node=activations)

        skip_engine = _engine(prepared)
        skip_hist = skip_engine.run(AsyncSkipTrain(RoundSchedule(4, 4)),
                                    activations_per_node=activations)
        return dpsgd_engine, dpsgd_hist, skip_engine, skip_hist

    dpsgd_engine, dpsgd_hist, skip_engine, skip_hist = run_once(
        benchmark, compute
    )

    ratio = dpsgd_engine.train_energy_wh / skip_engine.train_energy_wh
    print(f"\nasync-D-PSGD   : {dpsgd_hist.final_accuracy() * 100:5.1f}% @ "
          f"{dpsgd_engine.train_energy_wh:.2f} Wh")
    print(f"async-SkipTrain: {skip_hist.final_accuracy() * 100:5.1f}% @ "
          f"{skip_engine.train_energy_wh:.2f} Wh")
    print(f"training-energy ratio: {ratio:.2f}x "
          f"(sync version: 2.0x; no global coordination needed here)")

    assert ratio == pytest.approx(2.0, rel=0.15)
    assert skip_hist.final_accuracy() > dpsgd_hist.final_accuracy() - 0.05
