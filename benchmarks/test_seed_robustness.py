"""Robustness bench: the headline Table 3 comparison across seeds.

Single-seed wins can be luck; this bench repeats SkipTrain vs D-PSGD
over three full re-draws (data, partition, topology, init) and checks
the paper's claims hold in the mean: 2× energy at (4,4), accuracy gain
positive and larger than the cross-seed noise.
"""

import pytest

from repro.experiments import compare_algorithms

from .conftest import run_once

SEEDS = (11, 12, 13)


def test_table3_robust_across_seeds(benchmark, bench16_cifar):
    result = run_once(
        benchmark,
        lambda: compare_algorithms(
            bench16_cifar, ("skiptrain", "d-psgd"), seeds=SEEDS
        ),
    )

    print("\n" + result.render())

    skip = result.cells["skiptrain"]
    dpsgd = result.cells["d-psgd"]
    gain = (skip.mean_accuracy - dpsgd.mean_accuracy) * 100
    ratio = dpsgd.mean_energy_wh / skip.mean_energy_wh
    print(f"\nmean accuracy gain: {gain:+.1f} pp over {len(SEEDS)} seeds "
          f"(σ_skip = {skip.std_accuracy * 100:.1f}, "
          f"σ_dpsgd = {dpsgd.std_accuracy * 100:.1f})")
    print(f"mean energy ratio: {ratio:.2f}x")

    assert ratio == pytest.approx(2.0, rel=0.02)
    assert skip.mean_accuracy > dpsgd.mean_accuracy
    assert result.significant_gap("skiptrain", "d-psgd"), (
        "the SkipTrain advantage should exceed cross-seed noise"
    )
