"""Ablation bench: payload compression on top of SkipTrain.

The related work (§6) reduces DL energy via sparsified communication;
SkipTrain instead skips training rounds. This bench shows the two are
orthogonal: top-k compression cuts communication energy by ~10× with a
modest accuracy cost, while SkipTrain's 2× training-energy saving is
untouched (training dominates total energy by >200×, so compression
alone cannot deliver SkipTrain's savings — the paper's core argument).
"""

import pytest

from repro.core import RoundSchedule, SkipTrain, TopKCompressor
from repro.energy.accounting import EnergyMeter
from repro.experiments import prepare
from repro.simulation import EngineConfig, RngFactory, SimulationEngine, build_nodes

from .conftest import run_once


def _run(prepared, compressor, seed=11):
    preset = prepared.preset
    rngs = RngFactory(seed)
    cfg = EngineConfig(
        local_steps=preset.local_steps, learning_rate=preset.learning_rate,
        total_rounds=preset.total_rounds, eval_every=preset.total_rounds,
        eval_node_sample=None,
    )
    model = preset.model_factory(rngs.stream("model"))
    nodes = build_nodes(prepared.train, prepared.partition,
                        preset.batch_size, rngs)
    meter = EnergyMeter(prepared.trace)
    engine = SimulationEngine(model, nodes, prepared.mixing, cfg,
                              prepared.test, meter=meter,
                              compressor=compressor)
    history = engine.run(
        SkipTrain(preset.n_nodes, RoundSchedule(4, 4))
    )
    return history.final_accuracy(), meter


def test_compression_ablation(benchmark, bench16_cifar):
    def compute():
        prepared = prepare(bench16_cifar, 3, seed=11)
        full = _run(prepared, None)
        topk = _run(prepared, TopKCompressor(0.1))
        return full, topk

    (acc_full, meter_full), (acc_topk, meter_topk) = run_once(benchmark, compute)

    print(f"\nSkipTrain, full payloads : {acc_full * 100:5.1f}% | "
          f"train {meter_full.total_train_wh:.2f} Wh, "
          f"comm {meter_full.total_comm_wh * 1000:.2f} mWh")
    print(f"SkipTrain + top-10%      : {acc_topk * 100:5.1f}% | "
          f"train {meter_topk.total_train_wh:.2f} Wh, "
          f"comm {meter_topk.total_comm_wh * 1000:.2f} mWh")

    # compression shrinks communication energy by ~the payload ratio…
    assert meter_topk.total_comm_wh < 0.25 * meter_full.total_comm_wh
    # …leaves training energy untouched…
    assert meter_topk.total_train_wh == pytest.approx(
        meter_full.total_train_wh
    )
    # …and training still dominates total energy, so round skipping (not
    # compression) is the energy lever — the paper's argument
    assert meter_full.total_train_wh > 50 * meter_full.total_comm_wh
    # accuracy degrades gracefully
    assert acc_topk > acc_full - 0.15
